#include "perturb/perturber.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

namespace comet::perturb {

namespace {

using graph::DepEdge;
using graph::DepFeature;
using graph::DepKind;
using graph::DepResource;
using graph::Feature;
using graph::FeatureSet;
using x86::BasicBlock;
using x86::Instruction;
using x86::Operand;
using x86::Reg;
using x86::RegClass;
using x86::RegFamily;

/// A reference to one register occurrence inside an instruction: either a
/// plain register operand, or the base/index of a memory operand.
struct RegOccurrence {
  std::size_t operand_index;
  enum class Slot : std::uint8_t { Direct, MemBase, MemIndex } slot;
};

std::vector<RegOccurrence> occurrences_of(const Instruction& inst,
                                          RegFamily family) {
  std::vector<RegOccurrence> out;
  for (std::size_t i = 0; i < inst.operands.size(); ++i) {
    const auto& op = inst.operands[i];
    if (op.is_reg() && op.as_reg().family == family) {
      out.push_back({i, RegOccurrence::Slot::Direct});
    } else if (op.is_mem()) {
      const auto& m = op.as_mem();
      if (m.base && m.base->family == family) {
        out.push_back({i, RegOccurrence::Slot::MemBase});
      }
      if (m.index && m.index->family == family) {
        out.push_back({i, RegOccurrence::Slot::MemIndex});
      }
    }
  }
  return out;
}

void rename_occurrence(Instruction& inst, const RegOccurrence& occ,
                       RegFamily to) {
  auto& op = inst.operands[occ.operand_index];
  switch (occ.slot) {
    case RegOccurrence::Slot::Direct: {
      auto& r = op.as_reg();
      r.family = to;
      // high8 registers only exist in the first four families.
      if (r.high8 && !x86::reg_exists(to, 8, true)) r.high8 = false;
      break;
    }
    case RegOccurrence::Slot::MemBase:
      op.as_mem().base->family = to;
      break;
    case RegOccurrence::Slot::MemIndex:
      op.as_mem().index->family = to;
      break;
  }
}

/// Per-sample bookkeeping of what must not be touched.
struct Pins {
  std::vector<bool> opcode_pinned;      // per instruction
  std::vector<bool> delete_forbidden;   // per instruction
  /// Families whose occurrences are pinned, per instruction.
  std::vector<std::set<RegFamily>> pinned_families;
  /// Memory operand identity pinned (explicit mem operand must stay put).
  std::vector<bool> mem_pinned;
  /// Families carrying any preserved edge anywhere (excluded as rename
  /// targets so dependency rerouting cannot destroy a preserved edge).
  std::set<RegFamily> globally_reserved;
  bool preserve_count = false;

  explicit Pins(std::size_t n)
      : opcode_pinned(n, false),
        delete_forbidden(n, false),
        pinned_families(n),
        mem_pinned(n, false) {}
};

}  // namespace

std::size_t PerturbedBlock::position_of(std::size_t orig) const {
  for (std::size_t k = 0; k < orig_index.size(); ++k) {
    if (orig_index[k] == orig) return k;
  }
  return npos;
}

Perturber::Perturber(x86::BasicBlock block,
                     graph::DepGraphOptions graph_options,
                     PerturbConfig config)
    : block_(std::move(block)),
      graph_options_(graph_options),
      config_(config),
      graph_(graph::DepGraph::build(block_, graph_options_)) {
  replacements_.reserve(block_.size());
  for (const auto& inst : block_.instructions) {
    replacements_.push_back(
        x86::replacement_opcodes(inst.opcode, inst.operands));
  }
}

PerturbedBlock Perturber::sample(const FeatureSet& preserve,
                                 util::Rng& rng) const {
  const std::size_t n = block_.size();
  Pins pins(n);

  // 1. Decode the preserved feature set into pins.
  std::vector<DepEdge> preserved_edges;
  for (const Feature& f : preserve.items()) {
    switch (f.type()) {
      case graph::FeatureType::Inst: {
        const auto& fi = f.as_inst();
        if (fi.index < n) {
          pins.opcode_pinned[fi.index] = true;
          pins.delete_forbidden[fi.index] = true;
        }
        break;
      }
      case graph::FeatureType::NumInsts:
        pins.preserve_count = true;
        break;
      case graph::FeatureType::Dep: {
        const auto& fd = f.as_dep();
        for (const DepEdge& e : graph_.edges()) {
          if (e.from == fd.from && e.to == fd.to && e.kind == fd.kind) {
            preserved_edges.push_back(e);
          }
        }
        break;
      }
    }
  }

  // 2. Explicit voluntary retention of other dependencies (Appendix E.3):
  //    each non-preserved edge is pinned outright with a small probability,
  //    producing perturbations close to the original block.
  std::vector<const DepEdge*> free_edges;
  for (const DepEdge& e : graph_.edges()) {
    const bool already =
        std::find_if(preserved_edges.begin(), preserved_edges.end(),
                     [&](const DepEdge& p) {
                       return p.from == e.from && p.to == e.to &&
                              p.kind == e.kind && p.resource == e.resource &&
                              p.family == e.family;
                     }) != preserved_edges.end();
    if (already) continue;
    if (rng.bernoulli(config_.p_explicit_dep_retain)) {
      preserved_edges.push_back(e);
    } else {
      free_edges.push_back(&e);
    }
  }

  // 3. Apply pins implied by preserved edges.
  for (const DepEdge& e : preserved_edges) {
    pins.opcode_pinned[e.from] = true;
    pins.opcode_pinned[e.to] = true;
    pins.delete_forbidden[e.from] = true;
    pins.delete_forbidden[e.to] = true;
    if (e.resource == DepResource::Register) {
      pins.pinned_families[e.from].insert(e.family);
      pins.pinned_families[e.to].insert(e.family);
      pins.globally_reserved.insert(e.family);
    } else if (e.resource == DepResource::Memory) {
      pins.mem_pinned[e.from] = true;
      pins.mem_pinned[e.to] = true;
    }
  }

  // Families whose access pattern must not change at a given position: an
  // instruction sitting between the endpoints of a preserved register
  // dependency would reroute that edge under nearest-writer chaining if a
  // replacement opcode changed how the carrying family is accessed there —
  // implicitly (a 1-operand div clobbering rax) or explicitly (cmp -> cmov
  // turning a read of the destination into a write).
  std::vector<std::set<RegFamily>> sensitive(n);
  for (const DepEdge& e : preserved_edges) {
    if (e.resource != DepResource::Register) continue;
    for (std::size_t v = e.from + 1; v < e.to; ++v) {
      sensitive[v].insert(e.family);
    }
  }

  // Working copy.
  std::vector<Instruction> insts = block_.instructions;
  std::vector<bool> deleted(n, false);

  // 4. Vertex perturbation: opcode replacement or deletion.
  for (std::size_t v = 0; v < n; ++v) {
    if (pins.opcode_pinned[v]) continue;
    if (rng.bernoulli(config_.p_inst_retain)) continue;
    const bool can_delete = !pins.preserve_count && !pins.delete_forbidden[v];
    const bool try_delete = can_delete && rng.bernoulli(config_.p_delete);
    if (try_delete) {
      deleted[v] = true;
      continue;
    }
    const auto& cands = replacements_[v];
    if (cands.empty()) continue;  // e.g. lea: forced retention (Appendix D)
    const auto reroute_conflict = [&](x86::Opcode cand) {
      if (sensitive[v].empty()) return false;
      // Operands referencing a sensitive family: any access-pattern change
      // could reroute the preserved edge, so force retention.
      for (RegFamily f : sensitive[v]) {
        if (!occurrences_of(insts[v], f).empty()) return true;
      }
      const x86::Signature* sig =
          x86::find_signature(cand, insts[v].operands);
      if (sig == nullptr) return true;  // defensive: reject
      for (const auto& imp : sig->implicit) {
        if (sensitive[v].count(imp.family)) return true;
      }
      return false;
    };
    x86::Opcode chosen = rng.pick(cands);
    for (int attempt = 0; attempt < 4 && reroute_conflict(chosen);
         ++attempt) {
      chosen = rng.pick(cands);
    }
    if (reroute_conflict(chosen)) continue;  // forced retention
    insts[v].opcode = chosen;
    if (config_.whole_instruction_replacement) {
      // Ablation: also re-randomize unpinned register operands.
      for (auto& op : insts[v].operands) {
        if (!op.is_reg()) continue;
        auto& r = op.as_reg();
        if (pins.pinned_families[v].count(r.family)) continue;
        const auto& pool = reg_class(r) == RegClass::Vec
                               ? x86::vec_families()
                               : x86::substitutable_gpr_families();
        Instruction backup = insts[v];
        r.family = rng.pick(pool);
        if (r.high8 && !x86::reg_exists(r.family, 8, true)) r.high8 = false;
        if (!x86::is_valid(insts[v])) insts[v] = backup;
      }
    }
  }

  // 5. Edge perturbation: break non-retained hazards via operand renaming.
  for (const DepEdge* ep : free_edges) {
    const DepEdge& e = *ep;
    if (deleted[e.from] || deleted[e.to]) continue;  // already gone
    if (rng.bernoulli(config_.p_dep_retain)) continue;

    if (e.resource == DepResource::Memory) {
      // Shift the displacement of one endpoint's memory operand: breaks
      // syntactic address identity without touching register hazards.
      const std::size_t side = rng.bernoulli(0.5) ? e.from : e.to;
      const std::size_t other = side == e.from ? e.to : e.from;
      const auto try_shift = [&](std::size_t idx) {
        if (pins.mem_pinned[idx]) return false;
        for (auto& op : insts[idx].operands) {
          if (!op.is_mem()) continue;
          op.as_mem().disp += 8 * rng.range(1, 16);
          return true;
        }
        return false;
      };
      if (!try_shift(side)) try_shift(other);
      continue;
    }
    if (e.resource != DepResource::Register) continue;  // flags: unbreakable

    // Pick a rename target family: same class, not the carrying family,
    // not reserved by any preserved edge. Prefer families the block does not
    // touch at all, so that breaking one dependency does not accidentally
    // create a new one (which would distort the cost of unrelated feature
    // sets and bias precision estimates).
    const RegClass cls = x86::reg_class(e.family);
    std::vector<RegFamily> pool, fresh;
    const auto& base_pool = cls == RegClass::Vec
                                ? x86::vec_families()
                                : x86::substitutable_gpr_families();
    for (RegFamily f : base_pool) {
      if (f == e.family || pins.globally_reserved.count(f)) continue;
      pool.push_back(f);
      bool used = false;
      for (std::size_t v = 0; v < n && !used; ++v) {
        if (deleted[v]) continue;
        used = !occurrences_of(insts[v], f).empty();
        if (!used) {
          // Implicit accesses (div/mul rax/rdx, push/pop rsp) also make a
          // family unsafe as a rename target.
          for (const auto& a : x86::semantics(insts[v]).regs) {
            used |= a.reg.family == f;
          }
        }
      }
      if (!used) fresh.push_back(f);
    }
    if (config_.prefer_fresh_rename && !fresh.empty()) pool = std::move(fresh);
    if (pool.empty()) continue;

    // Prefer renaming the consumer's occurrences; fall back to the producer.
    const auto try_rename = [&](std::size_t idx) {
      if (pins.pinned_families[idx].count(e.family)) return false;
      const auto occs = occurrences_of(insts[idx], e.family);
      if (occs.empty()) return false;  // implicit operand: cannot rename
      const Instruction backup = insts[idx];
      const RegFamily target = rng.pick(pool);
      for (const auto& occ : occs) rename_occurrence(insts[idx], occ, target);
      if (!x86::is_valid(insts[idx])) {
        insts[idx] = backup;  // e.g. shift count must stay cl
        return false;
      }
      return true;
    };
    if (!try_rename(e.to)) try_rename(e.from);
  }

  // 6. Materialize the perturbed block with the original-position mapping.
  PerturbedBlock out;
  for (std::size_t v = 0; v < n; ++v) {
    if (deleted[v]) continue;
    out.block.instructions.push_back(std::move(insts[v]));
    out.orig_index.push_back(v);
  }
  return out;
}

bool Perturber::contains(const PerturbedBlock& pb,
                         const FeatureSet& fs) const {
  std::optional<graph::DepGraph> pg;  // built lazily
  for (const Feature& f : fs.items()) {
    switch (f.type()) {
      case graph::FeatureType::NumInsts:
        if (pb.block.size() != f.as_num_insts().count) return false;
        break;
      case graph::FeatureType::Inst: {
        const auto& fi = f.as_inst();
        const auto pos = pb.position_of(fi.index);
        if (pos == PerturbedBlock::npos) return false;
        if (pb.block.instructions[pos].opcode != fi.opcode) return false;
        break;
      }
      case graph::FeatureType::Dep: {
        const auto& fd = f.as_dep();
        const auto pf = pb.position_of(fd.from);
        const auto pt = pb.position_of(fd.to);
        if (pf == PerturbedBlock::npos || pt == PerturbedBlock::npos) {
          return false;
        }
        if (!pg) pg = graph::DepGraph::build(pb.block, graph_options_);
        if (!pg->has_edge(pf, pt, fd.kind)) return false;
        break;
      }
    }
  }
  return true;
}

double Perturber::log10_space_size(const FeatureSet& preserve) const {
  const std::size_t n = block_.size();
  Pins pins(n);
  std::vector<DepEdge> preserved_edges;
  for (const Feature& f : preserve.items()) {
    switch (f.type()) {
      case graph::FeatureType::Inst: {
        const auto& fi = f.as_inst();
        if (fi.index < n) {
          pins.opcode_pinned[fi.index] = true;
          pins.delete_forbidden[fi.index] = true;
        }
        break;
      }
      case graph::FeatureType::NumInsts:
        pins.preserve_count = true;
        break;
      case graph::FeatureType::Dep: {
        const auto& fd = f.as_dep();
        for (const DepEdge& e : graph_.edges()) {
          if (e.from == fd.from && e.to == fd.to && e.kind == fd.kind) {
            pins.opcode_pinned[e.from] = true;
            pins.opcode_pinned[e.to] = true;
            pins.delete_forbidden[e.from] = true;
            pins.delete_forbidden[e.to] = true;
            if (e.resource == DepResource::Register) {
              pins.pinned_families[e.from].insert(e.family);
              pins.pinned_families[e.to].insert(e.family);
            }
          }
        }
        break;
      }
    }
  }

  double log10_total = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    // Opcode choices: retain + each replacement (+ delete).
    double opcode_choices = 1.0;
    if (!pins.opcode_pinned[v]) {
      opcode_choices += static_cast<double>(replacements_[v].size());
      if (!pins.preserve_count && !pins.delete_forbidden[v]) {
        opcode_choices += 1.0;
      }
    }
    log10_total += std::log10(opcode_choices);

    // Operand choices: every renameable register occurrence can take any
    // family of its class; memory displacements contribute a word-aligned
    // neighborhood factor.
    const auto& inst = block_.instructions[v];
    for (const auto& op : inst.operands) {
      const auto count_family = [&](RegFamily fam, RegClass cls) {
        if (pins.pinned_families[v].count(fam)) return;
        const std::size_t pool = cls == RegClass::Vec
                                     ? x86::vec_families().size()
                                     : x86::substitutable_gpr_families().size();
        log10_total += std::log10(static_cast<double>(pool));
      };
      if (op.is_reg()) {
        const auto& r = op.as_reg();
        count_family(r.family, x86::reg_class(r));
      } else if (op.is_mem()) {
        const auto& m = op.as_mem();
        if (m.base) count_family(m.base->family, RegClass::Gpr);
        if (m.index) count_family(m.index->family, RegClass::Gpr);
        log10_total += std::log10(16.0);  // displacement neighborhood
      }
    }
  }
  return log10_total;
}

}  // namespace comet::perturb
