// ShardedCostModel: the x86 CostModel face of a serve::ShardedBrokerPool.
//
// It derives cost::CostModel, so anything that explains, evaluates, or
// benches an x86 model — CometExplainer, the AnchorEngine, the
// ExplanationServer — can sit on top of a sharded pool without knowing it:
// predict/predict_batch fan out across N shard threads, each owning its
// own model instance and memo cache. Because shards memoize across calls
// (and across concurrently served requests), repeated perturbations from
// different explanations of the same block are deduplicated pool-wide.
//
// This is the "pools → shards → models" slice of the serving stack; the
// request-level "scheduler" slice above it is serve::ExplanationServer.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "cost/cost_model.h"
#include "serve/sharded_pool.h"

namespace comet::serve {

class ShardedCostModel final : public cost::CostModel {
 public:
  using Factory =
      std::function<std::shared_ptr<const cost::CostModel>(std::size_t)>;

  /// `factory` builds one independent model instance per shard.
  ShardedCostModel(const Factory& factory, std::size_t shards,
                   bool memoize = true);

  double predict(const x86::BasicBlock& block) const override;
  void predict_batch(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out) const override;
  /// "sharded-N(<inner model name>)".
  std::string name() const override;

  /// Merged and per-shard query ledgers (load accounting).
  cost::QueryStats stats() const { return pool_.stats(); }
  std::vector<cost::QueryStats> shard_stats() const {
    return pool_.shard_stats();
  }
  std::size_t shard_count() const { return pool_.shard_count(); }

  /// Per-shard batch-size histograms and memo hit-rate gauges (see
  /// ShardedBrokerPool::metrics).
  const obs::MetricsRegistry& metrics() const { return pool_.metrics(); }

  /// Fault-recovery controls, forwarded to the pool: remove a dead shard
  /// from (or re-admit a recovered one to) the routing set, re-sharding
  /// the hash space and sweeping moved memo ranges. Typically driven by
  /// a ShardHealthMonitor's on_dead/on_readmitted handlers.
  void set_shard_live(std::size_t shard, bool live) {
    pool_.set_shard_live(shard, live);
  }
  std::vector<std::size_t> live_shards() const { return pool_.live_shards(); }
  std::vector<std::size_t> memo_sizes() const { return pool_.memo_sizes(); }

 private:
  ShardedBrokerPool<x86::BasicBlock, cost::CostModel> pool_;
};

}  // namespace comet::serve
