// Remote shards: serve::ShardedBrokerPool shards living in another
// process, reached over the net/ wire protocol.
//
//     scheduler → pools → shards → [wire protocol] → remote models
//
// serve::RemoteShardClient is a cost::CostModel whose predict/predict_batch
// serialize the blocks (canonical text — the same string every memo cache
// keys on), frame them (net/wire.h), and round-trip them over a
// net::Transport to a serve::RemoteShardServer wrapping the real model.
// Because the client *is* a CostModel, a remote shard drops into every
// existing seam unchanged: hand a connector to ShardedCostModel's factory
// and the pool's shard threads each own a connection to a remote process;
// predictions cross the wire as IEEE-754 bit patterns, so remote-sharded
// explanations stay bit-identical to in-process ones (asserted by
// tests/test_remote_shard.cpp against the tests/test_serve.cpp goldens).
//
// Failure semantics (each path has a typed, tested outcome):
//   * per-request deadline  — RemoteShardOptions::request_timeout_ns bounds
//     every round-trip; expiry throws net::TimeoutError. The connection is
//     dropped (its stream state is unknowable), never retried: a deadline
//     is a promise to the caller, not a hint.
//   * reconnect             — a dead connection (peer EOF, reset, garbage
//     bytes) is dropped and re-dialed through the connector, and the
//     request is resent, up to max_attempts total tries.
//   * failover              — when attempts are exhausted (or the deadline
//     fired) and a fallback model is configured, the request is served
//     locally by the fallback; with no fallback the typed error
//     propagates.
//   * cancellation          — cancel() fails the in-flight request and all
//     future ones with net::CancelledError (never failed over: cancel is
//     a caller decision, not a fault).
//
// Responses are matched to requests by id: stale frames (a late response
// to a request that already timed out, or a fault-duplicated response)
// are counted and discarded, so one slow exchange cannot poison the next.
//
// Thread-safety: the client is const-thread-safe the way every model in
// the repo is — requests serialize on an internal mutex (a pool shard
// drives its client from one thread anyway), and cancel()/counters() may
// be called concurrently from any thread. All connection state is
// annotated COMET_GUARDED_BY per the PR 6 gate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cost/cost_model.h"
#include "cost/query_stats.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/sync.h"

namespace comet::serve {

struct RemoteShardOptions {
  /// Per-request deadline over the whole round-trip (send + wait). Expiry
  /// throws net::TimeoutError (or fails over, if a fallback is set).
  std::uint64_t request_timeout_ns = 500'000'000;  // 500ms
  /// Total send attempts per request: 1 + (max_attempts - 1) reconnects.
  /// Timeouts never retry; only dead-connection errors do.
  std::size_t max_attempts = 2;
  /// Local model serving the request when the remote side is unreachable
  /// (timeout or attempts exhausted). nullptr = propagate the typed error.
  std::shared_ptr<const cost::CostModel> fallback;
  /// Traffic class stamped on every kPredictRequest (0 = interactive,
  /// 1 = batch — serve::Lane values). Advisory: lets the remote side see
  /// which serving lane generated the traffic.
  std::uint8_t priority = 0;
};

class RemoteShardClient final : public cost::CostModel {
 public:
  /// Dials one connection to the shard's server. Called lazily for the
  /// first request and again on every reconnect; must return a connected
  /// transport or throw net::TransportError.
  using Connector = std::function<std::unique_ptr<net::Transport>()>;

  explicit RemoteShardClient(Connector connector,
                             RemoteShardOptions options = {});
  ~RemoteShardClient() override;

  double predict(const x86::BasicBlock& block) const override;
  void predict_batch(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out) const override;
  /// "remote-shard".
  std::string name() const override;

  /// Fail the in-flight request (if any) and every future one with
  /// net::CancelledError. Callable from any thread; irreversible.
  void cancel();

  /// Round-trip the server's ledger (kStatsRequest). Subject to the same
  /// deadline/typed errors as predictions, but never failed over (stats
  /// are about the remote side by definition).
  cost::QueryStats server_stats() const;

  /// Liveness probe: one kHealthCheck round-trip, true iff the server
  /// answered with a kHealthReply echoing this probe's nonce within the
  /// request timeout. All transport-class failures (timeout, dead
  /// connection, malformed reply) return false — a probe is a question,
  /// not a request, so nothing is retried or failed over. Cancellation
  /// still throws net::CancelledError. This is the Prober a
  /// ShardHealthMonitor drives.
  bool ping() const;

  /// Failure-mode accounting, all monotonic.
  struct Counters {
    std::uint64_t requests = 0;    ///< predict/predict_batch round-trips
    std::uint64_t responses = 0;   ///< served remotely
    std::uint64_t timeouts = 0;    ///< request deadline fired
    std::uint64_t reconnects = 0;  ///< connection re-dialed after a death
    std::uint64_t failovers = 0;   ///< served by the local fallback
    std::uint64_t stale_frames = 0;  ///< late/duplicate responses discarded
    std::uint64_t wire_errors = 0;   ///< malformed bytes / dead connections
    std::uint64_t health_pings = 0;      ///< ping() probes issued
    std::uint64_t health_failures = 0;   ///< ping() probes that came back false
  };
  Counters counters() const;

 private:
  // One framed round-trip under mutex_: send `request`, await the matching
  // response frame within the deadline. Throws the typed net errors.
  net::Frame round_trip(net::MessageType request_type,
                        std::vector<std::uint8_t> payload) const
      COMET_REQUIRES(mutex_);

  // Connection lifecycle (conn_mutex_ nests inside mutex_; cancel() takes
  // only conn_mutex_ so it can interrupt a request in flight).
  std::shared_ptr<net::Transport> ensure_transport(bool* dialed) const
      COMET_EXCLUDES(conn_mutex_);
  void drop_transport() const COMET_EXCLUDES(conn_mutex_);
  void throw_if_cancelled(const char* what) const COMET_EXCLUDES(conn_mutex_);

  Connector connector_;
  RemoteShardOptions options_;

  mutable util::Mutex mutex_;  // serializes requests
  mutable std::uint64_t next_id_ COMET_GUARDED_BY(mutex_) = 1;
  mutable net::FrameAssembler assembler_ COMET_GUARDED_BY(mutex_);
  mutable Counters counters_ COMET_GUARDED_BY(mutex_);
  mutable bool ever_connected_ COMET_GUARDED_BY(mutex_) = false;

  mutable util::Mutex conn_mutex_;
  mutable std::shared_ptr<net::Transport> transport_
      COMET_GUARDED_BY(conn_mutex_);
  mutable bool cancelled_ COMET_GUARDED_BY(conn_mutex_) = false;
};

/// The server half: wraps a local model and serves the wire protocol over
/// one or more transports (one session thread each). Sessions end on peer
/// EOF, a kShutdown frame, malformed bytes (best-effort kError reply,
/// then close), or stop(); stop() closes every started transport and
/// joins every session thread, so destruction is a graceful drain.
class RemoteShardServer {
 public:
  explicit RemoteShardServer(std::shared_ptr<const cost::CostModel> model);
  ~RemoteShardServer();

  RemoteShardServer(const RemoteShardServer&) = delete;
  RemoteShardServer& operator=(const RemoteShardServer&) = delete;

  /// Serve one connection on the calling thread until the session ends.
  /// Never throws: every transport death or malformed frame resolves to a
  /// clean session end (counted in counters().errors where applicable).
  void serve(net::Transport& transport);

  /// Serve `transport` on an internal thread (the in-process deployment
  /// shape: one server, N shard connections).
  void start(std::unique_ptr<net::Transport> transport);

  /// Close every started transport and join every session thread.
  /// Idempotent; also run by the destructor.
  void stop();

  struct Counters {
    std::uint64_t sessions = 0;   ///< serve()/start() connections begun
    std::uint64_t requests = 0;   ///< predict requests decoded
    std::uint64_t responses = 0;  ///< predict responses sent
    std::uint64_t errors = 0;     ///< kError frames sent (parse/bad bytes)
    std::uint64_t health_checks = 0;  ///< kHealthCheck probes answered
  };
  Counters counters() const;

  /// Ledger of the traffic this server evaluated (requested == evaluated:
  /// the server is deliberately memo-free — client-side shard brokers
  /// already deduplicate, and a second cache would only hide their hit
  /// rates).
  cost::QueryStats stats() const;

 private:
  // The serve() body: frames in, replies out, until the session ends.
  void session_loop(net::Transport& transport);
  // Returns false when the session should end (shutdown/peer gone).
  bool handle_frame(net::Transport& transport, const net::Frame& frame);

  std::shared_ptr<const cost::CostModel> model_;
  mutable util::Mutex mutex_;
  Counters counters_ COMET_GUARDED_BY(mutex_);
  cost::QueryStats stats_ COMET_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<net::Transport>> transports_
      COMET_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_ COMET_GUARDED_BY(mutex_);
  bool stopping_ COMET_GUARDED_BY(mutex_) = false;
};

}  // namespace comet::serve
