// AsyncBroker: a futures-based submit/collect interface over a
// cost::QueryBroker, backed by a fixed thread pool.
//
// The synchronous broker forces the explanation engine to alternate
// strictly between sampling (CPU-bound perturbation generation) and model
// evaluation (potentially slow: simulators, the LSTM, remote backends).
// AsyncBroker decouples the two: the caller submits a sampled batch and
// receives a std::future, then keeps sampling the next batch while a pool
// worker pushes the submitted one through the underlying QueryBroker. The
// KL-LUCB loop uses exactly this to pipeline its per-level arm pulls (see
// AnchorSearchOptions::async_inflight in core/anchor_engine.h).
//
// Ordering and determinism: batches are evaluated in submission (FIFO)
// order. With the default single evaluation worker the memo cache and the
// QueryStats ledger evolve exactly as they would under synchronous calls
// in the same order, so results AND query accounting are bit-identical to
// the sequential path. With more workers, batches still *start* in FIFO
// order but serialize on the broker mutex in acquisition order, so the
// values stay exact while cache-hit counts may vary run to run — opt in
// only where the ledger isn't asserted.
//
// The broker reference form lets an engine route all of its traffic — sync
// and async — through one shared cache and one ledger; the owning form is
// for standalone use (benches, tests).
#pragma once

#include <cstddef>
#include <future>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "cost/query_broker.h"
#include "serve/thread_pool.h"
#include "util/sync.h"

namespace comet::serve {

template <typename Block, typename Model>
class AsyncBroker {
 public:
  using Broker = cost::QueryBroker<Block, Model>;

  /// Wrap an existing broker (non-owning; `broker` must outlive this and
  /// must not be used directly by the caller while async jobs are in
  /// flight — route everything through this interface instead).
  explicit AsyncBroker(Broker& broker, std::size_t workers = 1)
      : broker_(&broker), pool_(workers) {}

  /// Own a fresh broker over `model` (which must outlive this).
  AsyncBroker(const Model& model, bool memoize, std::size_t workers = 1)
      : owned_(std::make_unique<Broker>(model, memoize)),
        broker_(owned_.get()),
        pool_(workers) {}

  /// Submit one batch for evaluation; collect with .get() on the returned
  /// future. The batch is taken by value so the caller can immediately
  /// reuse its buffers for sampling the next one.
  std::future<std::vector<double>> submit(std::vector<Block> blocks) {
    auto task = std::make_shared<std::packaged_task<std::vector<double>()>>(
        [this, blocks = std::move(blocks)]() mutable {
          std::vector<double> out(blocks.size());
          util::MutexLock lock(broker_mutex_);
          broker_->predict_batch(std::span<const Block>(blocks),
                                 std::span<double>(out));
          return out;
        });
    std::future<std::vector<double>> result = task->get_future();
    pool_.post([task] { (*task)(); });
    return result;
  }

  /// Synchronous convenience: submit and wait. Queued behind any batches
  /// already in flight, so mixing submit() and predict_batch() preserves
  /// FIFO evaluation order.
  void predict_batch(std::span<const Block> blocks, std::span<double> out) {
    const std::vector<double> result =
        submit(std::vector<Block>(blocks.begin(), blocks.end())).get();
    for (std::size_t i = 0; i < result.size(); ++i) out[i] = result[i];
  }

  /// Ledger snapshot. Only consistent when no batch is mid-evaluation;
  /// call after collecting all outstanding futures.
  cost::QueryStats stats() COMET_EXCLUDES(broker_mutex_) {
    util::MutexLock lock(broker_mutex_);
    return broker_->stats();
  }

  std::size_t workers() const { return pool_.size(); }

 private:
  std::unique_ptr<Broker> owned_;  // null in the wrapping form
  // The pointer itself is set once at construction; the broker it points
  // to (memo cache, ledger, scratch) is what the mutex serializes.
  Broker* broker_ COMET_PT_GUARDED_BY(broker_mutex_);
  util::Mutex broker_mutex_;  // serializes pool workers on the one broker
  ThreadPool pool_;
};

}  // namespace comet::serve
