#include "serve/remote_shard.h"

#include <algorithm>
#include <array>
#include <optional>
#include <utility>

#include "obs/clock.h"
#include "util/contract.h"
#include "x86/parser.h"

namespace comet::serve {

namespace {

// What to tell the caller when the server answered the request id but not
// the request: a kError frame, or an off-protocol response type.
std::string refusal_message(const net::Frame& frame) {
  if (frame.type == net::MessageType::kError) {
    const net::ErrorBody error = net::decode_error(frame.payload);
    return "remote-shard: server error " + std::to_string(error.code) + ": " +
           error.message;
  }
  return "remote-shard: unexpected response type " +
         std::to_string(static_cast<unsigned>(frame.type));
}

}  // namespace

// ---------------------------------------------------- RemoteShardClient --

RemoteShardClient::RemoteShardClient(Connector connector,
                                     RemoteShardOptions options)
    : connector_(std::move(connector)), options_(std::move(options)) {
  COMET_CHECK_MSG(connector_ != nullptr, "remote-shard: null connector");
  COMET_CHECK_MSG(options_.max_attempts >= 1,
                  "remote-shard: max_attempts must be at least 1");
  COMET_CHECK_MSG(options_.request_timeout_ns > 0,
                  "remote-shard: request timeout must be positive");
}

RemoteShardClient::~RemoteShardClient() {
  // Closing our end gives the server session a clean EOF to drain on.
  drop_transport();
}

std::string RemoteShardClient::name() const { return "remote-shard"; }

void RemoteShardClient::throw_if_cancelled(const char* what) const {
  util::MutexLock lock(conn_mutex_);
  if (cancelled_) throw net::CancelledError(what);
}

void RemoteShardClient::cancel() {
  std::shared_ptr<net::Transport> live;
  {
    util::MutexLock lock(conn_mutex_);
    cancelled_ = true;
    live = transport_;
  }
  // close() is the any-thread cancellation hook: an in-flight recv() on
  // the request thread wakes (EOF), notices cancelled_, and rethrows as
  // CancelledError.
  if (live) live->close();
}

std::shared_ptr<net::Transport> RemoteShardClient::ensure_transport(
    bool* dialed) const {
  {
    util::MutexLock lock(conn_mutex_);
    if (cancelled_) throw net::CancelledError("remote-shard: cancelled");
    if (transport_) {
      *dialed = false;
      return transport_;
    }
  }
  // Dial outside the lock: the connector may block (a real connect), and
  // cancel() must never wait behind it.
  std::shared_ptr<net::Transport> fresh = connector_();
  COMET_CHECK_MSG(fresh != nullptr, "remote-shard: connector returned null");
  util::MutexLock lock(conn_mutex_);
  if (cancelled_) {
    fresh->close();
    throw net::CancelledError("remote-shard: cancelled");
  }
  transport_ = fresh;
  *dialed = true;
  return fresh;
}

void RemoteShardClient::drop_transport() const {
  std::shared_ptr<net::Transport> dead;
  {
    util::MutexLock lock(conn_mutex_);
    dead = std::move(transport_);
    transport_ = nullptr;
  }
  if (dead) dead->close();
}

net::Frame RemoteShardClient::round_trip(net::MessageType request_type,
                                         std::vector<std::uint8_t> payload)
    const {
  net::Frame request;
  request.type = request_type;
  request.request_id = next_id_++;
  request.payload = std::move(payload);
  // Encoded once: every resend attempt ships the identical bytes under the
  // identical id, so a duplicate delivery is indistinguishable from a
  // retry and the response matcher needs no per-attempt state.
  const std::vector<std::uint8_t> encoded = net::encode_frame(request);

  const obs::Clock& clock = obs::steady_clock();
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      bool dialed = false;
      const std::shared_ptr<net::Transport> transport =
          ensure_transport(&dialed);
      if (dialed) {
        // A fresh connection starts a fresh byte stream.
        assembler_.reset();
        if (ever_connected_) ++counters_.reconnects;
        ever_connected_ = true;
      }
      transport->send(encoded);
      const std::uint64_t deadline =
          clock.now_ns() + options_.request_timeout_ns;
      std::array<std::uint8_t, 4096> buf;
      for (;;) {
        while (std::optional<net::Frame> frame = assembler_.poll()) {
          if (frame->request_id == request.request_id) {
            return *std::move(frame);
          }
          // A response to a request that already timed out, or a
          // fault-duplicated frame: count it and move on.
          ++counters_.stale_frames;
        }
        const std::uint64_t now = clock.now_ns();
        if (now >= deadline) {
          throw net::TimeoutError("remote-shard: request deadline elapsed");
        }
        const std::size_t n =
            transport->recv(std::span<std::uint8_t>(buf), deadline - now);
        if (n == 0) {
          throw net::DisconnectedError(
              "remote-shard: server closed the connection");
        }
        assembler_.feed(std::span<const std::uint8_t>(buf.data(), n));
      }
    } catch (const net::TimeoutError&) {
      throw_if_cancelled("remote-shard: cancelled");
      // The stream state after a timeout is unknowable (the response may
      // be half-delivered), so the connection is dropped — and the
      // deadline is a promise to the caller, so there is no retry.
      ++counters_.timeouts;
      drop_transport();
      assembler_.reset();
      throw;
    } catch (const net::CancelledError&) {
      drop_transport();
      assembler_.reset();
      throw;
    } catch (const net::TransportError&) {
      throw_if_cancelled("remote-shard: cancelled");
      ++counters_.wire_errors;
      drop_transport();
      assembler_.reset();
      if (attempt + 1 >= options_.max_attempts) throw;
    } catch (const util::ContractViolation& violation) {
      // Garbage bytes from the peer (a malformed frame out of the
      // assembler): same treatment as a dead connection.
      throw_if_cancelled("remote-shard: cancelled");
      ++counters_.wire_errors;
      drop_transport();
      assembler_.reset();
      if (attempt + 1 >= options_.max_attempts) {
        throw net::DisconnectedError(
            std::string("remote-shard: malformed bytes from server: ") +
            violation.what());
      }
    }
  }
}

double RemoteShardClient::predict(const x86::BasicBlock& block) const {
  double out = 0.0;
  predict_batch(std::span<const x86::BasicBlock>(&block, 1),
                std::span<double>(&out, 1));
  return out;
}

void RemoteShardClient::predict_batch(std::span<const x86::BasicBlock> blocks,
                                      std::span<double> out) const {
  COMET_CHECK_MSG(out.size() == blocks.size(),
                  "remote-shard: predict_batch out/blocks size mismatch");
  if (blocks.empty()) return;
  net::PredictRequest request;
  request.priority = options_.priority;
  // Ship the remaining budget, not an absolute clock reading (clocks do
  // not cross hosts): the server sees how long this round-trip may take.
  request.deadline_ns = options_.request_timeout_ns;
  request.block_texts.reserve(blocks.size());
  for (const x86::BasicBlock& block : blocks) {
    request.block_texts.push_back(block.to_string());
  }
  {
    util::MutexLock lock(mutex_);
    ++counters_.requests;
    try {
      const net::Frame response = round_trip(
          net::MessageType::kPredictRequest,
          net::encode_predict_request(request));
      if (response.type == net::MessageType::kPredictResponse) {
        const net::PredictResponse decoded =
            net::decode_predict_response(response.payload);
        COMET_CHECK_MSG(decoded.values.size() == blocks.size(),
                        "remote-shard: server returned "
                            << decoded.values.size() << " predictions for "
                            << blocks.size() << " blocks");
        std::copy(decoded.values.begin(), decoded.values.end(), out.begin());
        ++counters_.responses;
        return;
      }
      throw net::TransportError(refusal_message(response));
    } catch (const net::CancelledError&) {
      throw;  // a caller decision, never failed over
    } catch (const net::TransportError&) {
      if (!options_.fallback) throw;
      ++counters_.failovers;
    } catch (const util::ContractViolation&) {
      // The frame was sound but its payload wasn't (or the count was
      // wrong): the remote answer is unusable.
      ++counters_.wire_errors;
      if (!options_.fallback) throw;
      ++counters_.failovers;
    }
  }
  // Failover: serve locally. Outside mutex_ so a slow fallback model does
  // not block counters()/the next caller longer than it must.
  options_.fallback->predict_batch(blocks, out);
}

cost::QueryStats RemoteShardClient::server_stats() const {
  util::MutexLock lock(mutex_);
  const net::Frame response =
      round_trip(net::MessageType::kStatsRequest, {});
  COMET_CHECK_MSG(response.type == net::MessageType::kStatsResponse,
                  "remote-shard: bad stats response type");
  return net::decode_stats(response.payload);
}

bool RemoteShardClient::ping() const {
  util::MutexLock lock(mutex_);
  ++counters_.health_pings;
  net::HealthPing probe;
  // Varies per probe (ids are monotonic) so a stale reply from an earlier
  // probe can never pass the echo check; round_trip's id matching already
  // discards such frames, the nonce is the wire-level belt-and-braces.
  probe.nonce = 0x9e3779b97f4a7c15ULL ^ next_id_;
  try {
    const net::Frame response = round_trip(net::MessageType::kHealthCheck,
                                           net::encode_health_ping(probe));
    if (response.type != net::MessageType::kHealthReply) {
      ++counters_.health_failures;
      return false;
    }
    const net::HealthReply reply = net::decode_health_reply(response.payload);
    if (reply.nonce != probe.nonce) {
      ++counters_.health_failures;
      return false;
    }
    return true;
  } catch (const net::CancelledError&) {
    throw;  // a caller decision, as everywhere else
  } catch (const net::TransportError&) {
    ++counters_.health_failures;
    return false;
  } catch (const util::ContractViolation&) {
    // Malformed reply payload: the shard is up enough to send garbage,
    // which is not up enough to route traffic to.
    ++counters_.wire_errors;
    ++counters_.health_failures;
    return false;
  }
}

RemoteShardClient::Counters RemoteShardClient::counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

// ---------------------------------------------------- RemoteShardServer --

RemoteShardServer::RemoteShardServer(
    std::shared_ptr<const cost::CostModel> model)
    : model_(std::move(model)) {
  COMET_CHECK_MSG(model_ != nullptr, "RemoteShardServer: null model");
}

RemoteShardServer::~RemoteShardServer() { stop(); }

void RemoteShardServer::serve(net::Transport& transport) {
  {
    util::MutexLock lock(mutex_);
    ++counters_.sessions;
  }
  session_loop(transport);
  // However the session ended, close our side so the peer observes a
  // clean end of stream instead of a connection that hangs open.
  transport.close();
}

void RemoteShardServer::session_loop(net::Transport& transport) {
  net::FrameAssembler assembler;
  std::array<std::uint8_t, 4096> buf;
  for (;;) {
    try {
      std::optional<net::Frame> frame = assembler.poll();
      while (!frame.has_value()) {
        // A server session blocks until the client speaks or stop()
        // closes the transport — the drain contract, not a hang.
        // comet-lint: allow(unbounded-wait)
        const std::size_t n =
            transport.recv(std::span<std::uint8_t>(buf), net::kNoTimeout);
        if (n == 0) return;  // peer closed: clean session end
        assembler.feed(std::span<const std::uint8_t>(buf.data(), n));
        frame = assembler.poll();
      }
      if (!handle_frame(transport, *frame)) return;
    } catch (const util::ContractViolation& violation) {
      // Malformed bytes from the client: report best-effort, then end the
      // session — the stream has no recoverable frame boundary left.
      {
        util::MutexLock lock(mutex_);
        ++counters_.errors;
      }
      try {
        net::Frame reply;
        reply.type = net::MessageType::kError;
        reply.payload = net::encode_error(
            {net::ErrorBody::kBadRequest, violation.what()});
        transport.send(net::encode_frame(reply));
      } catch (const net::TransportError&) {
        // The peer is gone too; nothing to report to.
      }
      return;
    } catch (const net::TransportError&) {
      return;  // connection died, or stop() closed it: session over
    }
  }
}

bool RemoteShardServer::handle_frame(net::Transport& transport,
                                     const net::Frame& frame) {
  net::Frame reply;
  reply.request_id = frame.request_id;
  switch (frame.type) {
    case net::MessageType::kShutdown:
      return false;
    case net::MessageType::kPredictRequest: {
      {
        util::MutexLock lock(mutex_);
        ++counters_.requests;
      }
      try {
        const net::PredictRequest request =
            net::decode_predict_request(frame.payload);
        std::vector<x86::BasicBlock> blocks;
        blocks.reserve(request.block_texts.size());
        for (const std::string& text : request.block_texts) {
          blocks.push_back(x86::parse_block(text));
        }
        std::vector<double> values(blocks.size());
        model_->predict_batch(blocks, values);
        {
          util::MutexLock lock(mutex_);
          // The server is memo-free (client-side shard brokers already
          // deduplicate), so requested == evaluated by construction.
          stats_.requested += blocks.size();
          stats_.evaluated += blocks.size();
          stats_.batch_calls += 1;
          ++counters_.responses;
        }
        reply.type = net::MessageType::kPredictResponse;
        reply.payload = net::encode_predict_response({std::move(values)});
      } catch (const x86::ParseError& error) {
        // A bad block text fails this request, not the session.
        {
          util::MutexLock lock(mutex_);
          ++counters_.errors;
        }
        reply.type = net::MessageType::kError;
        reply.payload =
            net::encode_error({net::ErrorBody::kParseError, error.what()});
      }
      transport.send(net::encode_frame(reply));
      return true;
    }
    case net::MessageType::kStatsRequest:
      reply.type = net::MessageType::kStatsResponse;
      reply.payload = net::encode_stats(stats());
      transport.send(net::encode_frame(reply));
      return true;
    case net::MessageType::kHealthCheck: {
      net::HealthReply health;
      try {
        health.nonce = net::decode_health_ping(frame.payload).nonce;
      } catch (const util::ContractViolation& violation) {
        {
          util::MutexLock lock(mutex_);
          ++counters_.errors;
        }
        reply.type = net::MessageType::kError;
        reply.payload = net::encode_error(
            {net::ErrorBody::kBadRequest, violation.what()});
        transport.send(net::encode_frame(reply));
        return true;
      }
      {
        util::MutexLock lock(mutex_);
        ++counters_.health_checks;
        health.requests_served = counters_.requests;
      }
      reply.type = net::MessageType::kHealthReply;
      reply.payload = net::encode_health_reply(health);
      transport.send(net::encode_frame(reply));
      return true;
    }
    default: {
      // Response types never flow client → server.
      {
        util::MutexLock lock(mutex_);
        ++counters_.errors;
      }
      reply.type = net::MessageType::kError;
      reply.payload = net::encode_error(
          {net::ErrorBody::kBadRequest, "unexpected message type"});
      transport.send(net::encode_frame(reply));
      return true;
    }
  }
}

void RemoteShardServer::start(std::unique_ptr<net::Transport> transport) {
  COMET_CHECK_MSG(transport != nullptr, "RemoteShardServer: null transport");
  std::shared_ptr<net::Transport> shared = std::move(transport);
  util::MutexLock lock(mutex_);
  COMET_CHECK_MSG(!stopping_, "RemoteShardServer: start() after stop()");
  transports_.push_back(shared);
  threads_.emplace_back([this, shared] { serve(*shared); });
}

void RemoteShardServer::stop() {
  std::vector<std::shared_ptr<net::Transport>> transports;
  std::vector<std::thread> threads;
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
    transports.swap(transports_);
    threads.swap(threads_);
  }
  // Close every session's transport (unblocks their recv with EOF), then
  // join outside the lock so draining sessions can still take it.
  for (const auto& transport : transports) transport->close();
  for (std::thread& thread : threads) thread.join();
}

RemoteShardServer::Counters RemoteShardServer::counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

cost::QueryStats RemoteShardServer::stats() const {
  util::MutexLock lock(mutex_);
  return stats_;
}

}  // namespace comet::serve
