#include "serve/health.h"

#include <algorithm>
#include <utility>

#include "util/contract.h"

namespace comet::serve {

ShardHealthMonitor::ShardHealthMonitor(std::size_t shards, Prober prober,
                                       HealthOptions options)
    : prober_(std::move(prober)),
      options_(options),
      clock_(options.clock != nullptr ? *options.clock : obs::steady_clock()),
      rng_(options.seed) {
  COMET_CHECK_MSG(shards > 0, "ShardHealthMonitor needs at least one shard");
  COMET_CHECK_MSG(prober_ != nullptr, "ShardHealthMonitor needs a prober");
  util::MutexLock lock(mutex_);
  shards_.resize(shards);
}

ShardHealthMonitor::~ShardHealthMonitor() { stop(); }

void ShardHealthMonitor::tick() {
  util::MutexLock lock(tick_mutex_);
  probe_pass(/*ignore_due=*/false);
}

void ShardHealthMonitor::force_probe_all() {
  util::MutexLock lock(tick_mutex_);
  probe_pass(/*ignore_due=*/true);
}

void ShardHealthMonitor::probe_pass(bool ignore_due) {
  const std::uint64_t now = clock_.now_ns();
  std::vector<std::size_t> due;
  {
    util::MutexLock lock(mutex_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (ignore_due || now >= shards_[s].next_due_ns) due.push_back(s);
    }
  }
  std::vector<std::size_t> died;
  std::vector<std::size_t> readmitted;
  for (const std::size_t shard : due) {
    const bool ok = prober_(shard);  // no locks held: may block on I/O
    record_result(shard, ok, clock_.now_ns(), died, readmitted);
  }
  // Handlers fire outside every monitor lock, in shard order, exactly
  // once per transition.
  for (const std::size_t shard : died) {
    if (on_dead_) on_dead_(shard);
  }
  for (const std::size_t shard : readmitted) {
    if (on_readmitted_) on_readmitted_(shard);
  }
}

void ShardHealthMonitor::record_result(std::size_t shard, bool ok,
                                       std::uint64_t now,
                                       std::vector<std::size_t>& died,
                                       std::vector<std::size_t>& readmitted) {
  util::MutexLock lock(mutex_);
  ShardState& state = shards_[shard];
  ++counters_.probes;
  const auto readmit = [&] {
    state.health = ShardHealth::kHealthy;
    state.half_open_successes = 0;
    state.backoff_ns = 0;
    state.next_due_ns = now + options_.probe_interval_ns;
    ++counters_.readmissions;
    readmitted.push_back(shard);
  };
  if (ok) {
    state.consecutive_failures = 0;
    switch (state.health) {
      case ShardHealth::kHealthy:
      case ShardHealth::kSuspect:
        state.health = ShardHealth::kHealthy;
        state.next_due_ns = now + options_.probe_interval_ns;
        break;
      case ShardHealth::kDead:
        // Circuit half-open: start counting consecutive successes.
        state.health = ShardHealth::kProbation;
        state.half_open_successes = 1;
        if (state.half_open_successes >= options_.readmit_probes) {
          readmit();
        } else {
          state.next_due_ns = now + options_.probe_interval_ns;
        }
        break;
      case ShardHealth::kProbation:
        ++state.half_open_successes;
        if (state.half_open_successes >= options_.readmit_probes) {
          readmit();
        } else {
          state.next_due_ns = now + options_.probe_interval_ns;
        }
        break;
    }
    return;
  }
  ++counters_.failures;
  switch (state.health) {
    case ShardHealth::kHealthy:
    case ShardHealth::kSuspect:
      ++state.consecutive_failures;
      if (state.consecutive_failures >= options_.failure_threshold) {
        state.health = ShardHealth::kDead;
        state.half_open_successes = 0;
        state.backoff_ns = options_.backoff_base_ns;
        state.next_due_ns = now + jittered(state.backoff_ns);
        ++counters_.deaths;
        died.push_back(shard);
      } else {
        state.health = ShardHealth::kSuspect;
        state.next_due_ns = now + options_.probe_interval_ns;
      }
      break;
    case ShardHealth::kDead:
      // Still dead: keep backing off (capped).
      state.backoff_ns = std::min<std::uint64_t>(
          options_.backoff_max_ns,
          static_cast<std::uint64_t>(static_cast<double>(state.backoff_ns) *
                                     options_.backoff_factor));
      state.next_due_ns = now + jittered(state.backoff_ns);
      break;
    case ShardHealth::kProbation:
      // Relapse during half-open: back to dead. No on_dead refire (the
      // pool never re-admitted it) and no new death counted — this is
      // the same outage continuing.
      state.health = ShardHealth::kDead;
      state.half_open_successes = 0;
      state.backoff_ns = std::min<std::uint64_t>(
          options_.backoff_max_ns,
          static_cast<std::uint64_t>(static_cast<double>(state.backoff_ns) *
                                     options_.backoff_factor));
      state.next_due_ns = now + jittered(state.backoff_ns);
      break;
  }
}

std::uint64_t ShardHealthMonitor::jittered(std::uint64_t wait_ns) {
  if (options_.jitter_frac <= 0.0 || wait_ns == 0) return wait_ns;
  // Uniform in [1 - jitter_frac, 1 + jitter_frac], seeded: deterministic
  // for a given construction seed and probe history.
  const double factor = 1.0 + options_.jitter_frac * (2.0 * rng_.uniform() - 1.0);
  return static_cast<std::uint64_t>(static_cast<double>(wait_ns) * factor);
}

void ShardHealthMonitor::start(std::uint64_t period_ns) {
  stop();
  {
    util::MutexLock lock(bg_mutex_);
    bg_stop_ = false;
  }
  const std::uint64_t period = period_ns == 0 ? 1'000'000 : period_ns;
  bg_thread_ = std::thread([this, period] {
    for (;;) {
      {
        util::MutexLock lock(bg_mutex_);
        if (!bg_stop_) bg_cv_.wait_for_ns(lock, period);
        if (bg_stop_) return;
      }
      tick();
    }
  });
}

void ShardHealthMonitor::stop() {
  {
    util::MutexLock lock(bg_mutex_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (bg_thread_.joinable()) bg_thread_.join();
}

ShardHealth ShardHealthMonitor::health(std::size_t shard) const {
  util::MutexLock lock(mutex_);
  COMET_CHECK_MSG(shard < shards_.size(), "shard index out of range: " << shard);
  return shards_[shard].health;
}

std::vector<ShardHealth> ShardHealthMonitor::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<ShardHealth> out;
  out.reserve(shards_.size());
  for (const ShardState& state : shards_) out.push_back(state.health);
  return out;
}

ShardHealthMonitor::Counters ShardHealthMonitor::counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

}  // namespace comet::serve
