// ShardedBrokerPool: fan predict_batch traffic out across N worker threads,
// each owning its own model instance and its own memoizing QueryBroker.
//
// Blocks are hash-sharded by block text (fnv1a64 % shards), so a given
// block always lands on the same shard: its memo entry lives in exactly one
// cache, repeated queries from *different* requests hit that same cache,
// and no result is ever computed twice across the pool. A pool predict_batch
// call partitions the batch, dispatches each sub-batch to its shard's
// queue, and waits for all shards to scatter their results back into the
// caller's output span (disjoint indices, so no synchronization is needed
// on the span itself).
//
// Thread-safety: every shard's model + broker are touched only by that
// shard's worker thread (queries, stats snapshots, and cache all serialize
// through the shard queue), so the pool's predict/predict_batch/stats are
// safe to call concurrently from any number of threads — the pool is a
// const-thread-safe "model" in the QueryBroker sense, which is exactly how
// serve::ShardedCostModel presents it to the explanation engine.
//
// Per-shard QueryStats are exposed raw (load-balance accounting: how even
// is the hash spread?) and merged via QueryStats::operator+=.
//
// Fault recovery: the pool re-shards instead of limping. set_shard_live()
// (driven by a ShardHealthMonitor watching remote shards) removes a shard
// from the routing set — the hash space redistributes over the survivors
// — and adds it back after recovery. On every routing change the pool
// posts a memo sweep to each live shard evicting entries the shard no
// longer owns under the new map (retain_memo_if), so caches track
// ownership instead of accumulating moved ranges. Results stay
// bit-identical across re-shards because every shard's model is
// identical-by-construction (same factory); the routing set only decides
// *where* a block is priced, never what the answer is. With every shard
// marked dead the pool degrades to routing over the full set (the layer
// above — FallbackChain — decides what to do about shards that then
// fail), so predict_batch never deadlocks on an empty routing set.
//
// Observability: the pool owns an obs::MetricsRegistry with, per shard, a
// sub-batch-size histogram (shard_batch_size{shard="N"} — how the hash
// spread actually partitions traffic) and a memo hit-rate gauge
// (shard_hit_rate{shard="N"}). Both are recorded on the shard's own
// thread, serialized with its broker, so they cost the caller nothing and
// race with nothing.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "cost/query_broker.h"
#include "obs/metrics.h"
#include "serve/thread_pool.h"
#include "util/rng.h"
#include "util/sync.h"

namespace comet::serve {

template <typename Block, typename Model>
class ShardedBrokerPool {
 public:
  /// Builds the model instance owned by one shard. Called once per shard
  /// at pool construction; instances must be independent (or safely
  /// shareable) since each is driven from a different thread.
  using Factory =
      std::function<std::shared_ptr<const Model>(std::size_t shard)>;

  ShardedBrokerPool(const Factory& factory, std::size_t shards,
                    bool memoize = true) {
    if (shards == 0) shards = 1;
    shards_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(factory(s), memoize));
      const std::string label = std::to_string(s);
      shards_.back()->batch_size_hist = &metrics_.histogram(
          obs::MetricsRegistry::labeled("shard_batch_size", "shard", label));
      shards_.back()->hit_rate_gauge = &metrics_.gauge(
          obs::MetricsRegistry::labeled("shard_hit_rate", "shard", label));
    }
    util::MutexLock lock(route_mutex_);
    alive_.assign(shards, true);
  }

  // Destruction is a graceful drain: each shard's ThreadPool finishes its
  // queued sub-batches before joining (and is destroyed before the broker
  // and model its tasks reference).
  ShardedBrokerPool(const ShardedBrokerPool&) = delete;
  ShardedBrokerPool& operator=(const ShardedBrokerPool&) = delete;

  /// Predict every block of `blocks` into the parallel `out` span,
  /// fanning sub-batches out across the shards and waiting for all of
  /// them. Element-wise identical to any single instance the factory
  /// builds (deterministic models).
  void predict_batch(std::span<const Block> blocks,
                     std::span<double> out) const {
    if (blocks.empty()) return;
    const std::vector<std::size_t> live = routing_snapshot();
    std::vector<std::vector<std::size_t>> indices_of(shards_.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      indices_of[owner_in(blocks[i].to_string(), live)].push_back(i);
    }
    std::size_t sub_batches = 0;
    for (const auto& idx : indices_of) sub_batches += !idx.empty();
    Join join;
    join.add(sub_batches);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (indices_of[s].empty()) continue;
      std::vector<Block> sub;
      sub.reserve(indices_of[s].size());
      for (const std::size_t i : indices_of[s]) sub.push_back(blocks[i]);
      shards_[s]->post([shard = shards_[s].get(), sub = std::move(sub),
                        idx = std::move(indices_of[s]), out,
                        &join]() mutable {
        std::vector<double> sub_out(sub.size());
        shard->broker.predict_batch(std::span<const Block>(sub),
                                    std::span<double>(sub_out));
        // Shard-thread-side observability: the sub-batch width this shard
        // actually received, and its running memo hit rate (reads the
        // broker ledger on the only thread allowed to touch it).
        shard->batch_size_hist->record(sub.size());
        shard->hit_rate_gauge->set(shard->broker.stats().hit_rate());
        for (std::size_t j = 0; j < idx.size(); ++j) out[idx[j]] = sub_out[j];
        join.done_one();
      });
    }
    join.wait();
  }

  /// Single-block convenience (routes through the owning shard).
  double predict(const Block& block) const {
    double out = 0.0;
    predict_batch(std::span<const Block>(&block, 1),
                  std::span<double>(&out, 1));
    return out;
  }

  /// Which shard owns `block` under the *current* routing set (stable
  /// hash of the full block text — the same string the shard broker
  /// memoizes on).
  std::size_t shard_of(const Block& block) const {
    if (shards_.size() == 1) return 0;
    return owner_in(block.to_string(), routing_snapshot());
  }

  std::size_t shard_count() const { return shards_.size(); }

  /// Mark shard `s` live (routable) or dead. Removing a shard re-shards
  /// the hash space over the survivors; re-adding one re-shards again.
  /// Either way a memo sweep is posted to every live shard evicting
  /// entries it no longer owns, and this call waits for those sweeps
  /// (deterministic ordering for everything posted afterwards). Dead
  /// shards are not swept — they get theirs on re-admission. No-op when
  /// the liveness bit already matches.
  void set_shard_live(std::size_t s, bool live) {
    std::vector<std::size_t> routing;
    {
      util::MutexLock lock(route_mutex_);
      if (s >= shards_.size() || alive_[s] == live) return;
      alive_[s] = live;
      routing = routing_locked();
    }
    Join join;
    join.add(routing.size());
    for (const std::size_t shard_index : routing) {
      shards_[shard_index]->post(
          [shard = shards_[shard_index].get(), shard_index, routing, &join] {
            shard->broker.retain_memo_if([&](const std::string& key) {
              return owner_in(key, routing) == shard_index;
            });
            join.done_one();
          });
    }
    join.wait();
  }

  /// Indices of the shards currently in the routing set. (All of them at
  /// construction; possibly the degraded full set when everything has
  /// been marked dead — see the header comment.)
  std::vector<std::size_t> live_shards() const {
    return routing_snapshot();
  }

  /// Per-shard memo-entry counts, snapshotted on the shard threads
  /// (re-shard tests watch moved ranges disappear).
  std::vector<std::size_t> memo_sizes() const {
    std::vector<std::size_t> out(shards_.size());
    Join join;
    join.add(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->post([shard = shards_[s].get(), &out, s, &join] {
        out[s] = shard->broker.memo_size();
        join.done_one();
      });
    }
    join.wait();
    return out;
  }

  /// Per-shard ledgers, snapshotted on each shard's own thread (so the
  /// snapshot serializes with in-flight work instead of racing it).
  std::vector<cost::QueryStats> shard_stats() const {
    std::vector<cost::QueryStats> out(shards_.size());
    Join join;
    join.add(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->post([shard = shards_[s].get(), &out, s, &join] {
        out[s] = shard->broker.stats();
        join.done_one();
      });
    }
    join.wait();
    return out;
  }

  /// Merged ledger across all shards.
  cost::QueryStats stats() const {
    cost::QueryStats merged;
    for (const auto& s : shard_stats()) merged += s;
    return merged;
  }

  /// The model instance owned by shard `s` (for name/introspection only;
  /// do not call predict on it from outside the shard thread unless the
  /// model is const-thread-safe).
  const Model& shard_model(std::size_t s) const { return *shards_[s]->model; }

  /// Per-shard instrumentation: shard_batch_size{shard="N"} histograms and
  /// shard_hit_rate{shard="N"} gauges, exportable via to_prometheus() /
  /// to_json(). Snapshots may trail in-flight sub-batches by one update
  /// (recordings happen on the shard threads); call after predict_batch
  /// returns for exact counts.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  /// Countdown latch (mutex/cv formulation; <latch> kept out of the
  /// dependency surface). `pending` is set before any shard task can run
  /// and counted down under the mutex from the shard threads.
  struct Join {
    util::Mutex mutex;
    util::CondVar cv;
    std::size_t pending COMET_GUARDED_BY(mutex) = 0;

    void add(std::size_t n) COMET_EXCLUDES(mutex) {
      util::MutexLock lock(mutex);
      pending += n;
    }
    void done_one() COMET_EXCLUDES(mutex) {
      util::MutexLock lock(mutex);
      if (--pending == 0) cv.notify_all();
    }
    void wait() COMET_EXCLUDES(mutex) {
      util::MutexLock lock(mutex);
      // Countdown over local shard threads: every posted task runs, so
      // the latch always opens.
      // comet-lint: allow(unbounded-wait)
      while (pending != 0) cv.wait(lock);
    }
  };

  struct Shard {
    std::shared_ptr<const Model> model;  // declared before broker: broker
    cost::QueryBroker<Block, Model> broker;  // holds a pointer into it
    // Registry-owned instruments, touched only from this shard's thread
    // (the instruments are internally synchronized anyway; confinement
    // just makes the hit-rate read of the broker ledger legal).
    obs::Histogram* batch_size_hist = nullptr;
    obs::Gauge* hit_rate_gauge = nullptr;
    // One single-thread FIFO pool per shard: serializes all broker/model
    // access onto the shard's thread, and drains before broker/model die.
    ThreadPool pool{1};

    Shard(std::shared_ptr<const Model> m, bool memoize)
        : model(std::move(m)), broker(model.get(), memoize) {}

    void post(std::function<void()> task) { pool.post(std::move(task)); }
  };

  /// Owner of `key` among the shards listed in `routing` (hash over the
  /// routing set's *size*, so removing a shard redistributes the whole
  /// space over the survivors).
  static std::size_t owner_in(const std::string& key,
                              const std::vector<std::size_t>& routing) {
    if (routing.size() == 1) return routing[0];
    return routing[util::fnv1a64(key.data(), key.size()) % routing.size()];
  }

  std::vector<std::size_t> routing_locked() const
      COMET_REQUIRES(route_mutex_) {
    std::vector<std::size_t> routing;
    for (std::size_t s = 0; s < alive_.size(); ++s) {
      if (alive_[s]) routing.push_back(s);
    }
    if (routing.empty()) {
      // Fully dead: degrade to the full set rather than refuse to route.
      for (std::size_t s = 0; s < alive_.size(); ++s) routing.push_back(s);
    }
    return routing;
  }

  std::vector<std::size_t> routing_snapshot() const
      COMET_EXCLUDES(route_mutex_) {
    util::MutexLock lock(route_mutex_);
    return routing_locked();
  }

  // Declared before shards_: the shards hold pointers into the registry and
  // drain their queued work (which records through those pointers) before
  // the registry is destroyed.
  obs::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Routing state: which shards receive traffic. Brief critical sections
  // only (snapshot/rebuild); the memo sweeps run on the shard threads.
  mutable util::Mutex route_mutex_;
  std::vector<bool> alive_ COMET_GUARDED_BY(route_mutex_);
};

}  // namespace comet::serve
