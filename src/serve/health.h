// ShardHealthMonitor: the circuit breaker that decides which remote
// shards receive traffic.
//
// The monitor owns no sockets — it drives a Prober callback (typically
// RemoteShardClient::ping, a kHealthCheck/kHealthReply round trip) and a
// per-shard state machine:
//
//   kHealthy --failure--> kSuspect --failure x threshold--> kDead
//      ^                     |success                          |
//      |                     v                                 v
//      +<----------------kHealthy            (backoff, half-open probes)
//      |                                                       |
//      +<-- kProbation <--success-- (readmit_probes in a row) -+
//
// Reaching kDead fires on_dead(shard) exactly once per outage — the
// hook where a ShardedBrokerPool/ShardedCostModel removes the shard
// from its routing set (re-sharding the hash space over the survivors
// instead of paying per-request failover forever). Dead shards are
// re-probed on an exponential backoff with deterministic seeded jitter
// (util::Rng — the repo's raw-random lint contract); a success enters
// half-open kProbation, and `readmit_probes` consecutive successes fire
// on_readmitted(shard) — the hook that re-admits the shard to routing.
// Any probation failure drops straight back to kDead and the backoff
// keeps growing (capped).
//
// Driving it: call tick() yourself (tests pair it with obs::ManualClock
// and a scripted prober for fully deterministic sweeps), or start() a
// background thread that ticks every period. Probes run without the
// state lock held, so health()/counters() snapshots never block behind
// a wedged remote peer; tick() itself is serialized (one prober pass at
// a time). Handlers are invoked from the ticking thread, outside the
// state lock — they may call back into the pool freely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "util/rng.h"
#include "util/sync.h"

namespace comet::serve {

enum class ShardHealth : std::uint8_t {
  kHealthy = 0,    ///< in the routing set, probes passing
  kSuspect = 1,    ///< recent probe failure(s), not yet past the threshold
  kDead = 2,       ///< circuit open: out of routing, backoff re-probes only
  kProbation = 3,  ///< half-open: probes passing, not yet re-admitted
};

inline const char* shard_health_name(ShardHealth h) {
  switch (h) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kSuspect: return "suspect";
    case ShardHealth::kDead: return "dead";
    case ShardHealth::kProbation: return "probation";
  }
  return "unknown";
}

struct HealthOptions {
  /// Consecutive probe failures before the circuit opens (kDead).
  std::size_t failure_threshold = 3;
  /// Consecutive half-open successes before a dead shard is re-admitted.
  std::size_t readmit_probes = 2;
  /// Probe cadence for live (healthy/suspect/probation) shards; 0 =
  /// probe on every tick.
  std::uint64_t probe_interval_ns = 0;
  /// Exponential backoff for re-probing dead shards: base, multiplier,
  /// cap. Each wait is jittered by ±jitter_frac (seeded util::Rng) so a
  /// fleet of monitors doesn't re-probe in lockstep.
  std::uint64_t backoff_base_ns = 100'000'000;  // 100 ms
  double backoff_factor = 2.0;
  std::uint64_t backoff_max_ns = 5'000'000'000;  // 5 s
  double jitter_frac = 0.1;
  std::uint64_t seed = 0x5eed;
  /// Time source; nullptr = obs::steady_clock(). Tests inject an
  /// obs::ManualClock. Must outlive the monitor.
  const obs::Clock* clock = nullptr;
};

class ShardHealthMonitor {
 public:
  /// One liveness probe; true = the shard answered. Called without the
  /// monitor's state lock held (it may block on a network round trip).
  using Prober = std::function<bool(std::size_t shard)>;
  using Handler = std::function<void(std::size_t shard)>;

  struct Counters {
    std::uint64_t probes = 0;
    std::uint64_t failures = 0;      ///< failed probes
    std::uint64_t deaths = 0;        ///< healthy/suspect → dead transitions
    std::uint64_t readmissions = 0;  ///< probation → healthy transitions
  };

  ShardHealthMonitor(std::size_t shards, Prober prober,
                     HealthOptions options = {});
  ~ShardHealthMonitor();

  ShardHealthMonitor(const ShardHealthMonitor&) = delete;
  ShardHealthMonitor& operator=(const ShardHealthMonitor&) = delete;

  /// Fired once per healthy→dead transition / once per re-admission.
  /// Set before the first tick()/start(); invoked from the ticking
  /// thread with no monitor lock held.
  void set_on_dead(Handler handler) { on_dead_ = std::move(handler); }
  void set_on_readmitted(Handler handler) {
    on_readmitted_ = std::move(handler);
  }

  /// One monitoring pass: probe every shard whose next probe is due.
  void tick();

  /// Probe every shard now, ignoring due times (tests and "the operator
  /// clicked refresh").
  void force_probe_all();

  /// Tick from a background thread every `period_ns` until stop().
  void start(std::uint64_t period_ns);
  void stop();

  ShardHealth health(std::size_t shard) const;
  std::vector<ShardHealth> snapshot() const;
  Counters counters() const;

 private:
  struct ShardState {
    ShardHealth health = ShardHealth::kHealthy;
    std::size_t consecutive_failures = 0;
    std::size_t half_open_successes = 0;
    std::uint64_t next_due_ns = 0;   ///< probe at/after this clock reading
    std::uint64_t backoff_ns = 0;    ///< current dead-shard re-probe wait
  };

  void probe_pass(bool ignore_due) COMET_EXCLUDES(mutex_)
      COMET_REQUIRES(tick_mutex_);
  void record_result(std::size_t shard, bool ok, std::uint64_t now,
                     std::vector<std::size_t>& died,
                     std::vector<std::size_t>& readmitted)
      COMET_EXCLUDES(mutex_);
  std::uint64_t jittered(std::uint64_t wait_ns) COMET_REQUIRES(mutex_);

  const Prober prober_;
  const HealthOptions options_;
  const obs::Clock& clock_;
  Handler on_dead_;        // set before ticking starts
  Handler on_readmitted_;

  // Serializes prober passes (tick/force_probe_all); never held while a
  // caller reads health()/counters().
  util::Mutex tick_mutex_;
  // State lock: brief critical sections only — never held across a probe
  // or a handler.
  mutable util::Mutex mutex_;
  std::vector<ShardState> shards_ COMET_GUARDED_BY(mutex_);
  Counters counters_ COMET_GUARDED_BY(mutex_);
  util::Rng rng_ COMET_GUARDED_BY(mutex_);

  // Background ticker.
  util::Mutex bg_mutex_;
  util::CondVar bg_cv_;
  bool bg_stop_ COMET_GUARDED_BY(bg_mutex_) = false;
  std::thread bg_thread_;
};

}  // namespace comet::serve
