#include "serve/thread_pool.h"

#include <utility>

namespace comet::serve {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::post(std::function<void()> task) {
  {
    util::MutexLock lock(mutex_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      // Worker parking loop; woken by post() or the destructor's stop
      // signal, both of which arrive.
      // comet-lint: allow(unbounded-wait)
      while (!stopping_ && tasks_.empty()) cv_.wait(lock);
      if (tasks_.empty()) return;  // stopping and fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace comet::serve
