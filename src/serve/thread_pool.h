// A fixed-size FIFO thread pool — the execution substrate of the serving
// layer (serve::AsyncBroker evaluation workers, test harnesses).
//
// Deliberately minimal: tasks are opaque std::function<void()>s executed in
// submission order by whichever worker frees up first. With one worker the
// pool is a strict FIFO executor, which is what gives AsyncBroker its
// deterministic, bit-identical-to-sequential query accounting; more workers
// trade that determinism for concurrency (callers opt in explicitly).
//
// Shutdown is graceful: the destructor lets workers drain every queued task
// before joining, so no submitted work is ever dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace comet::serve {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; workers pick tasks up in FIFO order.
  void post(std::function<void()> task);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace comet::serve
