// A fixed-size FIFO thread pool — the execution substrate of the serving
// layer (serve::AsyncBroker evaluation workers, shard threads, the
// cost::CostModel batch fan-out, test harnesses).
//
// Deliberately minimal: tasks are opaque std::function<void()>s executed in
// submission order by whichever worker frees up first. With one worker the
// pool is a strict FIFO executor, which is what gives AsyncBroker its
// deterministic, bit-identical-to-sequential query accounting; more workers
// trade that determinism for concurrency (callers opt in explicitly).
//
// Shutdown is graceful: the destructor lets workers drain every queued task
// before joining, so no submitted work is ever dropped.
//
// Locking contract (compile-time checked under COMET_THREAD_SAFETY): the
// task queue and the stop flag are guarded by mutex_; workers_ is written
// only during construction and joined in the destructor, after every
// worker has observed stopping_, so it needs no lock.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace comet::serve {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains all queued tasks, then joins the workers.
  ~ThreadPool() COMET_EXCLUDES(mutex_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; workers pick tasks up in FIFO order.
  void post(std::function<void()> task) COMET_EXCLUDES(mutex_);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop() COMET_EXCLUDES(mutex_);

  util::Mutex mutex_;
  util::CondVar cv_;  // signalled on new work and on shutdown
  std::deque<std::function<void()>> tasks_ COMET_GUARDED_BY(mutex_);
  bool stopping_ COMET_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace comet::serve
