// RemoteStandInModel: a cost model with a simulated backend round-trip.
//
// The serving layer's throughput levers — request-level concurrency in the
// ExplanationServer, sampling/evaluation overlap in the AsyncBroker,
// round-trip elision in the engine's fused-arm-pull mode — pay off when a
// model query has latency that is not this process's CPU: a remote
// inference service, a cycle-accurate simulator farm, a hardware
// measurement rig. This wrapper makes that regime reproducible on any
// machine (including single-core CI) by charging a fixed wall-clock
// round-trip per predict/predict_batch call before delegating to the
// wrapped model. Predictions are untouched, so explanations stay
// bit-identical to the unwrapped model's.
//
// Used by bench_serving_throughput and serve_demo; never by tests that
// assert timing-independent behavior.
#pragma once

#include <chrono>
#include <memory>
#include <span>
#include <string>

#include "cost/cost_model.h"

namespace comet::serve {

class RemoteStandInModel final : public cost::CostModel {
 public:
  RemoteStandInModel(std::shared_ptr<const cost::CostModel> inner,
                     std::chrono::microseconds round_trip);

  double predict(const x86::BasicBlock& block) const override;
  void predict_batch(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out) const override;
  /// "remote(<inner model name>)".
  std::string name() const override;

  std::chrono::microseconds round_trip() const { return round_trip_; }

 private:
  std::shared_ptr<const cost::CostModel> inner_;
  std::chrono::microseconds round_trip_;
};

}  // namespace comet::serve
