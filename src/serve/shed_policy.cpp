#include "serve/shed_policy.h"

namespace comet::serve {

bool WatermarkShedPolicy::should_shed(const ShedContext& context) const {
  if (context.queue_capacity == 0) return false;
  const double occupancy = static_cast<double>(context.queue_depth) /
                           static_cast<double>(context.queue_capacity);
  if (context.lane == Lane::kBatch && occupancy >= options_.batch_watermark) {
    return true;
  }
  if (occupancy >= options_.saturation_watermark) {
    if (context.lane == Lane::kBatch) return true;
    if (context.has_deadline && options_.min_slack_ns != 0 &&
        context.deadline_slack_ns < options_.min_slack_ns) {
      return true;  // would expire in the queue; don't burn a slot on it
    }
  }
  return false;
}

}  // namespace comet::serve
