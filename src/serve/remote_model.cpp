#include "serve/remote_model.h"

#include <thread>

namespace comet::serve {

RemoteStandInModel::RemoteStandInModel(
    std::shared_ptr<const cost::CostModel> inner,
    std::chrono::microseconds round_trip)
    : inner_(std::move(inner)), round_trip_(round_trip) {}

double RemoteStandInModel::predict(const x86::BasicBlock& block) const {
  std::this_thread::sleep_for(round_trip_);
  return inner_->predict(block);
}

void RemoteStandInModel::predict_batch(std::span<const x86::BasicBlock> blocks,
                                       std::span<double> out) const {
  std::this_thread::sleep_for(round_trip_);
  inner_->predict_batch(blocks, out);
}

std::string RemoteStandInModel::name() const {
  return "remote(" + inner_->name() + ")";
}

}  // namespace comet::serve
