#include "serve/sharded_cost_model.h"

namespace comet::serve {

ShardedCostModel::ShardedCostModel(const Factory& factory, std::size_t shards,
                                   bool memoize)
    : pool_(factory, shards, memoize) {}

double ShardedCostModel::predict(const x86::BasicBlock& block) const {
  return pool_.predict(block);
}

void ShardedCostModel::predict_batch(std::span<const x86::BasicBlock> blocks,
                                     std::span<double> out) const {
  pool_.predict_batch(blocks, out);
}

std::string ShardedCostModel::name() const {
  return "sharded-" + std::to_string(pool_.shard_count()) + "(" +
         pool_.shard_model(0).name() + ")";
}

}  // namespace comet::serve
