// ExplanationServer: the request scheduler at the top of the serving stack
//
//     scheduler  →  per-model-kind pools  →  shards  →  models
//
// It accepts a stream of (block, model-key, options) jobs, multiplexes them
// over a fixed set of worker threads (one AnchorEngine run per job), and
// delivers explanations in completion order. Model keys name registered
// model instances — typically one per (model kind, µarch) pair, each either
// a plain const-thread-safe model shared by all workers or a
// serve::ShardedCostModel whose own shard threads parallelize every batch
// the engines issue.
//
// Flow control: admission goes through a bounded queue. submit() blocks
// until space frees up (backpressure propagates to the producer);
// try_submit() is the non-blocking variant and returns false when the
// queue is full. Shutdown is a graceful drain — every accepted job is
// explained before the workers join, and drain() lets callers wait for
// exactly that without destroying the server.
//
// Determinism: each job's engine owns its RNG, seeded from the job's
// options and block (see AnchorEngine::explain), and each job's broker is
// private to the worker running it, so a served explanation is
// bit-identical to one computed sequentially with the same (block, model,
// options) — regardless of worker count or completion order. Tests assert
// this.
//
// Observability: the server carries an obs::MetricsRegistry and traces
// every request's lifecycle — admit (accepted into the queue) → start (a
// worker dequeued it) → done (engine finished) → deliver (handed to the
// consumer). Exported per model key: queue-wait and service-latency
// histograms (p50/p95/p99); globally: live queue-depth and outstanding
// gauges, submitted/completed counters, and the two backpressure counters
// (submit had to block; try_submit was rejected). Scrape via
// metrics_text() (Prometheus exposition) or metrics_json(). All clock
// reads go through obs::Clock (ServeOptions::clock, steady by default) and
// only ever land in metrics and trace fields — never in scheduling or the
// search — so served explanations remain bit-identical to sequential runs
// with metrics on, off, or mocked (tests/test_obs.cpp).
//
// The server is templated over the same ISA traits as the engine, so the
// one scheduler serves both instantiations: x86 (CometExplainer::Traits)
// and RISC-V (RvExplainer::Traits). See serve/isa_servers.h for the
// ready-made aliases.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/anchor_engine.h"
#include "cost/query_stats.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "util/sync.h"

namespace comet::serve {

struct ServeOptions {
  std::size_t workers = 2;         ///< concurrent explanation sessions
  std::size_t queue_capacity = 32; ///< admission-queue bound (backpressure)
  /// Collect lifecycle metrics and request traces (counters/gauges update,
  /// latency histograms fill, Served::trace is stamped). Off = zero clock
  /// reads and untouched instruments; explanations are bit-identical
  /// either way.
  bool metrics = true;
  /// Time source for metrics and traces; nullptr = obs::steady_clock().
  /// Tests inject an obs::ManualClock for deterministic latency
  /// assertions. Must outlive the server.
  const obs::Clock* clock = nullptr;
};

/// Request-lifecycle timestamps (obs::Clock readings, ns). All zero when
/// the server runs with metrics off.
struct RequestTrace {
  std::uint64_t admit_ns = 0;    ///< accepted into the admission queue
  std::uint64_t start_ns = 0;    ///< dequeued by a worker; run begins
  std::uint64_t done_ns = 0;     ///< explanation finished
  std::uint64_t deliver_ns = 0;  ///< handed to the consumer (next/drain)

  std::uint64_t queue_wait_ns() const { return start_ns - admit_ns; }
  std::uint64_t run_ns() const { return done_ns - start_ns; }
  std::uint64_t total_ns() const { return deliver_ns - admit_ns; }
};

template <typename Traits>
class ExplanationServer {
 public:
  using Block = typename Traits::Block;
  using Model = typename Traits::Model;
  using Options = typename Traits::Options;
  using Explanation = typename Traits::Explanation;
  using Engine = core::AnchorEngine<Traits>;

  /// One delivered result.
  struct Served {
    std::uint64_t id = 0;     ///< submission ticket
    std::string model_key;    ///< which registered model served it
    Explanation explanation;  ///< bit-identical to the sequential path
    RequestTrace trace;       ///< lifecycle timestamps (metrics on only)
  };

  explicit ExplanationServer(ServeOptions options = {})
      : options_(options),
        clock_(options.clock != nullptr ? *options.clock
                                        : obs::steady_clock()) {
    if (options_.workers == 0) options_.workers = 1;
    if (options_.queue_capacity == 0) options_.queue_capacity = 1;
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Graceful drain: every accepted job completes before the workers join.
  ~ExplanationServer() COMET_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  ExplanationServer(const ExplanationServer&) = delete;
  ExplanationServer& operator=(const ExplanationServer&) = delete;

  /// Register a model under `key`. The instance must be const-thread-safe
  /// (all models in this repository are) or internally synchronized (a
  /// ShardedCostModel); it is shared by every job submitted under the key.
  void register_model(const std::string& key,
                      std::shared_ptr<const Model> model)
      COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    models_[key] = std::move(model);
  }

  /// Blocking submit: waits for queue space (backpressure), returns the
  /// job's ticket. Throws std::out_of_range for an unregistered key.
  std::uint64_t submit(const std::string& model_key, Block block,
                       Options options) COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    std::shared_ptr<const Model> model = lookup(model_key);
    if (options_.metrics && queue_.size() >= options_.queue_capacity) {
      submit_blocked_.increment();  // producer is about to feel backpressure
    }
    while (queue_.size() >= options_.queue_capacity) cv_space_.wait(lock);
    return enqueue(model_key, std::move(model), std::move(block),
                   std::move(options));
  }

  /// Non-blocking submit: false (and no ticket) when the queue is full.
  bool try_submit(const std::string& model_key, Block block, Options options,
                  std::uint64_t* id = nullptr) COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    std::shared_ptr<const Model> model = lookup(model_key);
    if (queue_.size() >= options_.queue_capacity) {
      if (options_.metrics) try_submit_rejected_.increment();
      return false;
    }
    const std::uint64_t ticket = enqueue(model_key, std::move(model),
                                         std::move(block), std::move(options));
    if (id != nullptr) *id = ticket;
    return true;
  }

  /// Next completed explanation, in completion order. Blocks while
  /// accepted jobs are outstanding; returns nullopt once every accepted
  /// job has been delivered.
  std::optional<Served> next() COMET_EXCLUDES(mutex_) {
    std::optional<Served> served;
    {
      util::MutexLock lock(mutex_);
      while (completed_.empty() && outstanding_ != 0) cv_done_.wait(lock);
      if (completed_.empty()) return std::nullopt;
      served = std::move(completed_.front());
      completed_.pop_front();
    }
    stamp_delivery(*served);
    return served;
  }

  /// Wait for every accepted job, then return all undelivered results in
  /// completion order.
  std::vector<Served> drain() COMET_EXCLUDES(mutex_) {
    std::vector<Served> out;
    {
      util::MutexLock lock(mutex_);
      while (outstanding_ != 0) cv_done_.wait(lock);
      out.reserve(completed_.size());
      for (auto& served : completed_) out.push_back(std::move(served));
      completed_.clear();
    }
    for (auto& served : out) stamp_delivery(served);
    return out;
  }

  /// Accepted jobs not yet completed (queued + running).
  std::size_t outstanding() const COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return outstanding_;
  }

  /// Per-key merged query ledgers of everything served so far.
  std::map<std::string, cost::QueryStats> stats_by_model() const
      COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return stats_;
  }

  /// Drain report: one line per model key with its merged ledger (shared
  /// formatting with the benches — cost::format_stats_report).
  std::string report() const COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return cost::format_stats_report(stats_);
  }

  /// The server's metrics registry: serve_submitted / serve_completed /
  /// serve_submit_blocked / serve_try_submit_rejected counters, live
  /// serve_queue_depth / serve_outstanding gauges, the
  /// serve_deliver_wait_ns histogram, and per-model-key
  /// serve_queue_wait_ns{model_key=...} / serve_run_ns{model_key=...}
  /// latency histograms.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Prometheus-style text exposition of every instrument (scrape body).
  std::string metrics_text() const { return metrics_.to_prometheus(); }

  /// JSON snapshot: counters, gauges, histogram summaries with
  /// p50/p95/p99.
  std::string metrics_json() const { return metrics_.to_json(); }

 private:
  struct Request {
    std::uint64_t id = 0;
    std::string model_key;
    std::shared_ptr<const Model> model;
    Block block;
    Options options;
    std::uint64_t admit_ns = 0;  ///< obs::Clock stamp at admission
  };

  // Resolves the model at admission time so workers never touch the
  // registry (the REQUIRES makes "caller holds mutex_" a compile-time
  // contract).
  std::shared_ptr<const Model> lookup(const std::string& key) const
      COMET_REQUIRES(mutex_) {
    const auto it = models_.find(key);
    if (it == models_.end()) {
      throw std::out_of_range("ExplanationServer: unregistered model key '" +
                              key + "'");
    }
    return it->second;
  }

  // Caller has verified queue space (and, per the annotation, holds mutex_).
  std::uint64_t enqueue(const std::string& model_key,
                        std::shared_ptr<const Model> model, Block block,
                        Options options) COMET_REQUIRES(mutex_) {
    const std::uint64_t ticket = next_id_++;
    Request request;
    request.id = ticket;
    request.model_key = model_key;
    request.model = std::move(model);
    request.block = std::move(block);
    request.options = std::move(options);
    if (options_.metrics) {
      request.admit_ns = clock_.now_ns();
      submitted_.increment();
    }
    queue_.push_back(std::move(request));
    ++outstanding_;
    if (options_.metrics) {
      queue_depth_.set(static_cast<double>(queue_.size()));
      outstanding_gauge_.set(static_cast<double>(outstanding_));
    }
    cv_work_.notify_one();
    return ticket;
  }

  // Delivery stamp: the last lifecycle timestamp, taken as the result
  // leaves next()/drain(). deliver - done is how long a finished result
  // waited for its consumer.
  void stamp_delivery(Served& served) {
    if (!options_.metrics) return;
    served.trace.deliver_ns = clock_.now_ns();
    deliver_wait_ns_.record(served.trace.deliver_ns - served.trace.done_ns);
  }

  void worker_loop() COMET_EXCLUDES(mutex_) {
    for (;;) {
      Request request;
      {
        util::MutexLock lock(mutex_);
        while (!stopping_ && queue_.empty()) cv_work_.wait(lock);
        if (queue_.empty()) return;  // stopping and fully drained
        request = std::move(queue_.front());
        queue_.pop_front();
        if (options_.metrics) {
          queue_depth_.set(static_cast<double>(queue_.size()));
        }
        cv_space_.notify_one();
      }
      // The engine references the request's model and options for the
      // duration of the run; both live in `request` on this stack frame.
      Engine engine(*request.model, request.options);
      Served served;
      served.id = request.id;
      served.model_key = std::move(request.model_key);
      served.trace.admit_ns = request.admit_ns;
      if (options_.metrics) served.trace.start_ns = clock_.now_ns();
      served.explanation = engine.explain(request.block);
      if (options_.metrics) {
        served.trace.done_ns = clock_.now_ns();
        completed_count_.increment();
        // Per-model-key latency histograms; resolved by name per completion
        // (an engine run dwarfs one map lookup).
        metrics_
            .histogram(obs::MetricsRegistry::labeled(
                "serve_queue_wait_ns", "model_key", served.model_key))
            .record(served.trace.queue_wait_ns());
        metrics_
            .histogram(obs::MetricsRegistry::labeled(
                "serve_run_ns", "model_key", served.model_key))
            .record(served.trace.run_ns());
      }
      {
        util::MutexLock lock(mutex_);
        stats_[served.model_key] += served.explanation.query_stats;
        completed_.push_back(std::move(served));
        --outstanding_;
        if (options_.metrics) {
          outstanding_gauge_.set(static_cast<double>(outstanding_));
        }
      }
      cv_done_.notify_all();
    }
  }

  ServeOptions options_;     // immutable after construction
  const obs::Clock& clock_;  // stateless or internally synchronized
  // Instruments are internally synchronized (one util::Mutex each) and the
  // registry map is lock-protected, so none of this needs mutex_. The
  // handles below are resolved once; hot paths increment through them.
  obs::MetricsRegistry metrics_;
  obs::Counter& submitted_ = metrics_.counter("serve_submitted");
  obs::Counter& completed_count_ = metrics_.counter("serve_completed");
  obs::Counter& submit_blocked_ = metrics_.counter("serve_submit_blocked");
  obs::Counter& try_submit_rejected_ =
      metrics_.counter("serve_try_submit_rejected");
  obs::Gauge& queue_depth_ = metrics_.gauge("serve_queue_depth");
  obs::Gauge& outstanding_gauge_ = metrics_.gauge("serve_outstanding");
  obs::Histogram& deliver_wait_ns_ =
      metrics_.histogram("serve_deliver_wait_ns");
  mutable util::Mutex mutex_;
  util::CondVar cv_work_;   // queue gained work / stopping
  util::CondVar cv_space_;  // queue gained space
  util::CondVar cv_done_;   // a job completed
  std::map<std::string, std::shared_ptr<const Model>> models_
      COMET_GUARDED_BY(mutex_);
  std::deque<Request> queue_ COMET_GUARDED_BY(mutex_);
  std::deque<Served> completed_ COMET_GUARDED_BY(mutex_);
  std::map<std::string, cost::QueryStats> stats_ COMET_GUARDED_BY(mutex_);
  std::size_t outstanding_ COMET_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_id_ COMET_GUARDED_BY(mutex_) = 1;
  bool stopping_ COMET_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;  // written only in the constructor
};

}  // namespace comet::serve
