// ExplanationServer: the request scheduler at the top of the serving stack
//
//     scheduler  →  per-model-kind pools  →  shards  →  models
//
// It accepts a stream of (block, model-key, options) jobs, multiplexes them
// over a fixed set of worker threads (one AnchorEngine run per job), and
// delivers explanations in completion order. Model keys name registered
// model instances — typically one per (model kind, µarch) pair, each either
// a plain const-thread-safe model shared by all workers or a
// serve::ShardedCostModel whose own shard threads parallelize every batch
// the engines issue.
//
// Flow control: admission goes through a bounded queue. submit() blocks
// until space frees up (backpressure propagates to the producer);
// try_submit() is the non-blocking variant and returns false when the
// queue is full. Shutdown is a graceful drain — every accepted job is
// explained before the workers join, and drain() lets callers wait for
// exactly that without destroying the server.
//
// Traffic controls: every submission carries a RequestOptions — a lane
// (interactive vs. batch) and an optional absolute deadline on the
// server's clock. The admission queue is two-lane and deadline-aware:
// work that is already expired is rejected at admit time, queued work
// whose deadline passes before a worker picks it up is expired without
// running, and both cases surface as typed Served results
// (ServeStatus::kDeadlineExceeded*) — never a silent drop. Workers
// dequeue interactive-lane work first; an anti-starvation credit hands
// the batch lane one dequeue in every ServeOptions::batch_credit_every.
// A pluggable ShedPolicy (ServeOptions::shed_policy) can refuse work at
// admission when the queue saturates (ServeStatus::kShed), shedding
// batch-lane and deadline-infeasible jobs first; sheds are counted per
// lane in the metrics registry. Deadlines gate *whether* a job runs,
// never how it runs: an explanation that completes — even one finishing
// past its deadline, delivered as ServeStatus::kLate — is bit-identical
// to the sequential path. Deadline checks are the one scheduling-side
// clock use, and they read the same injectable obs::Clock as the
// metrics, so tests drive them with an obs::ManualClock.
//
// Determinism: each job's engine owns its RNG, seeded from the job's
// options and block (see AnchorEngine::explain), and each job's broker is
// private to the worker running it, so a served explanation is
// bit-identical to one computed sequentially with the same (block, model,
// options) — regardless of worker count or completion order. Tests assert
// this.
//
// Observability: the server carries an obs::MetricsRegistry and traces
// every request's lifecycle — admit (accepted into the queue) → start (a
// worker dequeued it) → done (engine finished) → deliver (handed to the
// consumer). Exported per model key: queue-wait and service-latency
// histograms (p50/p95/p99); globally: live queue-depth and outstanding
// gauges, submitted/completed counters, and the two backpressure counters
// (submit had to block; try_submit was rejected). Scrape via
// metrics_text() (Prometheus exposition) or metrics_json(). All clock
// reads go through obs::Clock (ServeOptions::clock, steady by default) and
// only ever land in metrics and trace fields — never in scheduling or the
// search — so served explanations remain bit-identical to sequential runs
// with metrics on, off, or mocked (tests/test_obs.cpp).
//
// The server is templated over the same ISA traits as the engine, so the
// one scheduler serves both instantiations: x86 (CometExplainer::Traits)
// and RISC-V (RvExplainer::Traits). See serve/isa_servers.h for the
// ready-made aliases.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/anchor_engine.h"
#include "cost/query_stats.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "serve/shed_policy.h"
#include "util/sync.h"

namespace comet::serve {

struct ServeOptions {
  std::size_t workers = 2;         ///< concurrent explanation sessions
  std::size_t queue_capacity = 32; ///< admission-queue bound (backpressure)
  /// Collect lifecycle metrics and request traces (counters/gauges update,
  /// latency histograms fill, Served::trace is stamped). Off = zero clock
  /// reads and untouched instruments; explanations are bit-identical
  /// either way. (Jobs with deadlines read the clock regardless — the
  /// deadline decides whether the job runs at all.)
  bool metrics = true;
  /// Time source for metrics, traces, and deadline checks; nullptr =
  /// obs::steady_clock(). Tests inject an obs::ManualClock for
  /// deterministic latency and expiry assertions. Must outlive the
  /// server.
  const obs::Clock* clock = nullptr;
  /// Anti-starvation: with both lanes non-empty, one dequeue in every
  /// `batch_credit_every` goes to the batch lane (the rest are
  /// interactive-first). 0 is treated as 1 (strict alternation is the
  /// floor; the batch lane can never starve outright).
  std::size_t batch_credit_every = 4;
  /// Admission-time load shedding; nullptr = never shed (bounded-queue
  /// backpressure only). Must be const-thread-safe.
  std::shared_ptr<const ShedPolicy> shed_policy = nullptr;
};

/// How a submission left the server. Only kOk and kLate carry a valid
/// explanation; the other statuses are typed refusals (the job never
/// ran), delivered through the same next()/drain() stream so no
/// accepted ticket is ever silently dropped.
enum class ServeStatus : std::uint8_t {
  kOk = 0,                    ///< ran to completion (within deadline, if any)
  kLate = 1,                  ///< ran to completion but past its deadline
  kDeadlineExceededAtAdmit = 2,  ///< already expired when submitted
  kDeadlineExceededInQueue = 3,  ///< expired while queued; never ran
  kShed = 4,                  ///< refused by the ShedPolicy at admission
};

/// True when a Served with this status carries a usable explanation.
constexpr bool has_explanation(ServeStatus status) {
  return status == ServeStatus::kOk || status == ServeStatus::kLate;
}

inline const char* serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kLate: return "late";
    case ServeStatus::kDeadlineExceededAtAdmit: return "expired_at_admit";
    case ServeStatus::kDeadlineExceededInQueue: return "expired_in_queue";
    case ServeStatus::kShed: return "shed";
  }
  return "unknown";
}

/// Per-request traffic class, passed alongside the block and engine
/// options at submission.
struct RequestOptions {
  Lane lane = Lane::kInteractive;
  /// Absolute deadline on the server's clock (ServeOptions::clock), in
  /// ns; 0 = none. Advisory for scheduling only — it never changes the
  /// bits of an explanation that completes.
  std::uint64_t deadline_ns = 0;
};

/// Request-lifecycle timestamps (obs::Clock readings, ns). All zero when
/// the server runs with metrics off.
struct RequestTrace {
  std::uint64_t admit_ns = 0;    ///< accepted into the admission queue
  std::uint64_t start_ns = 0;    ///< dequeued by a worker; run begins
  std::uint64_t done_ns = 0;     ///< explanation finished
  std::uint64_t deliver_ns = 0;  ///< handed to the consumer (next/drain)

  std::uint64_t queue_wait_ns() const { return start_ns - admit_ns; }
  std::uint64_t run_ns() const { return done_ns - start_ns; }
  std::uint64_t total_ns() const { return deliver_ns - admit_ns; }
};

template <typename Traits>
class ExplanationServer {
 public:
  using Block = typename Traits::Block;
  using Model = typename Traits::Model;
  using Options = typename Traits::Options;
  using Explanation = typename Traits::Explanation;
  using Engine = core::AnchorEngine<Traits>;

  /// One delivered result. Check `status` first: only
  /// has_explanation(status) results carry a valid explanation.
  struct Served {
    std::uint64_t id = 0;     ///< submission ticket
    std::string model_key;    ///< which registered model served it
    Explanation explanation;  ///< bit-identical to the sequential path
    RequestTrace trace;       ///< lifecycle timestamps (metrics on only)
    ServeStatus status = ServeStatus::kOk;
    Lane lane = Lane::kInteractive;
    std::uint64_t deadline_ns = 0;  ///< echo of the request's deadline
  };

  explicit ExplanationServer(ServeOptions options = {})
      : options_(options),
        clock_(options.clock != nullptr ? *options.clock
                                        : obs::steady_clock()) {
    if (options_.workers == 0) options_.workers = 1;
    if (options_.queue_capacity == 0) options_.queue_capacity = 1;
    workers_.reserve(options_.workers);
    for (std::size_t i = 0; i < options_.workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Graceful drain: every accepted job completes before the workers join.
  ~ExplanationServer() COMET_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      stopping_ = true;
    }
    cv_work_.notify_all();
    for (auto& worker : workers_) worker.join();
  }

  ExplanationServer(const ExplanationServer&) = delete;
  ExplanationServer& operator=(const ExplanationServer&) = delete;

  /// Register a model under `key`. The instance must be const-thread-safe
  /// (all models in this repository are) or internally synchronized (a
  /// ShardedCostModel); it is shared by every job submitted under the key.
  void register_model(const std::string& key,
                      std::shared_ptr<const Model> model)
      COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    models_[key] = std::move(model);
  }

  /// Blocking submit: waits for queue space (backpressure), returns the
  /// job's ticket. Throws std::out_of_range for an unregistered key.
  /// Expired or shed work is *accepted* (a ticket is issued) but resolves
  /// instantly to a typed Served result instead of queueing.
  std::uint64_t submit(const std::string& model_key, Block block,
                       Options options, RequestOptions request = {})
      COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    std::shared_ptr<const Model> model = lookup(model_key);
    if (const auto verdict = admission_verdict(request)) {
      return finish_rejected(model_key, request, *verdict);
    }
    if (options_.metrics && queued() >= options_.queue_capacity) {
      submit_blocked_.increment();  // producer is about to feel backpressure
    }
    // Backpressure is deliberately unbounded: the producer asked to
    // block until the queue has room.
    // comet-lint: allow(unbounded-wait)
    while (queued() >= options_.queue_capacity) cv_space_.wait(lock);
    // The deadline may have passed while this producer was parked.
    if (request.deadline_ns != 0 && clock_.now_ns() >= request.deadline_ns) {
      return finish_rejected(model_key, request,
                             ServeStatus::kDeadlineExceededAtAdmit);
    }
    return enqueue(model_key, std::move(model), std::move(block),
                   std::move(options), request);
  }

  /// Non-blocking submit: false (and no ticket) when the queue is full.
  /// Expired or shed work still resolves to a typed Served result (true
  /// is returned and a ticket issued — the refusal arrives via
  /// next()/drain()).
  bool try_submit(const std::string& model_key, Block block, Options options,
                  std::uint64_t* id = nullptr, RequestOptions request = {})
      COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    std::shared_ptr<const Model> model = lookup(model_key);
    if (const auto verdict = admission_verdict(request)) {
      const std::uint64_t ticket =
          finish_rejected(model_key, request, *verdict);
      if (id != nullptr) *id = ticket;
      return true;
    }
    if (queued() >= options_.queue_capacity) {
      if (options_.metrics) try_submit_rejected_.increment();
      return false;
    }
    const std::uint64_t ticket = enqueue(model_key, std::move(model),
                                         std::move(block), std::move(options),
                                         request);
    if (id != nullptr) *id = ticket;
    return true;
  }

  /// Next completed explanation, in completion order. Blocks while
  /// accepted jobs are outstanding; returns nullopt once every accepted
  /// job has been delivered.
  std::optional<Served> next() COMET_EXCLUDES(mutex_) {
    std::optional<Served> served;
    {
      util::MutexLock lock(mutex_);
      // Graceful-drain contract: every accepted job completes, so this
      // wait always terminates.
      // comet-lint: allow(unbounded-wait)
      while (completed_.empty() && outstanding_ != 0) cv_done_.wait(lock);
      if (completed_.empty()) return std::nullopt;
      served = std::move(completed_.front());
      completed_.pop_front();
    }
    stamp_delivery(*served);
    return served;
  }

  /// Wait for every accepted job, then return all undelivered results in
  /// completion order.
  std::vector<Served> drain() COMET_EXCLUDES(mutex_) {
    std::vector<Served> out;
    {
      util::MutexLock lock(mutex_);
      // Graceful-drain contract: every accepted job completes, so this
      // wait always terminates.
      // comet-lint: allow(unbounded-wait)
      while (outstanding_ != 0) cv_done_.wait(lock);
      out.reserve(completed_.size());
      for (auto& served : completed_) out.push_back(std::move(served));
      completed_.clear();
    }
    for (auto& served : out) stamp_delivery(served);
    return out;
  }

  /// Accepted jobs not yet completed (queued + running).
  std::size_t outstanding() const COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return outstanding_;
  }

  /// Per-key merged query ledgers of everything served so far.
  std::map<std::string, cost::QueryStats> stats_by_model() const
      COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return stats_;
  }

  /// Drain report: one line per model key with its merged ledger (shared
  /// formatting with the benches — cost::format_stats_report).
  std::string report() const COMET_EXCLUDES(mutex_) {
    util::MutexLock lock(mutex_);
    return cost::format_stats_report(stats_);
  }

  /// The server's metrics registry: serve_submitted / serve_completed /
  /// serve_submit_blocked / serve_try_submit_rejected counters, live
  /// serve_queue_depth / serve_outstanding gauges (plus per-lane
  /// serve_lane_depth{lane=...}), the serve_deliver_wait_ns histogram,
  /// per-model-key serve_queue_wait_ns{model_key=...} /
  /// serve_run_ns{model_key=...} latency histograms, and the traffic-
  /// control counters: serve_deadline_expired{stage="admit"|"queue"},
  /// serve_deadline_late, and serve_shed{lane="interactive"|"batch"}.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Prometheus-style text exposition of every instrument (scrape body).
  std::string metrics_text() const { return metrics_.to_prometheus(); }

  /// JSON snapshot: counters, gauges, histogram summaries with
  /// p50/p95/p99.
  std::string metrics_json() const { return metrics_.to_json(); }

 private:
  struct Request {
    std::uint64_t id = 0;
    std::string model_key;
    std::shared_ptr<const Model> model;
    Block block;
    Options options;
    std::uint64_t admit_ns = 0;  ///< obs::Clock stamp at admission
    Lane lane = Lane::kInteractive;
    std::uint64_t deadline_ns = 0;  ///< absolute, server clock; 0 = none
  };

  // Resolves the model at admission time so workers never touch the
  // registry (the REQUIRES makes "caller holds mutex_" a compile-time
  // contract).
  std::shared_ptr<const Model> lookup(const std::string& key) const
      COMET_REQUIRES(mutex_) {
    const auto it = models_.find(key);
    if (it == models_.end()) {
      throw std::out_of_range("ExplanationServer: unregistered model key '" +
                              key + "'");
    }
    return it->second;
  }

  std::size_t queued() const COMET_REQUIRES(mutex_) {
    return lanes_[0].size() + lanes_[1].size();
  }

  std::deque<Request>& lane_queue(Lane lane) COMET_REQUIRES(mutex_) {
    return lanes_[static_cast<std::size_t>(lane)];
  }

  // Instant admission refusals: already expired, or refused by the shed
  // policy. nullopt = admit normally. The clock is read only when the
  // request actually carries a deadline.
  std::optional<ServeStatus> admission_verdict(const RequestOptions& request)
      COMET_REQUIRES(mutex_) {
    std::uint64_t now = 0;
    if (request.deadline_ns != 0) {
      now = clock_.now_ns();
      if (now >= request.deadline_ns) {
        return ServeStatus::kDeadlineExceededAtAdmit;
      }
    }
    if (options_.shed_policy != nullptr) {
      ShedContext context;
      context.queue_depth = queued();
      context.queue_capacity = options_.queue_capacity;
      context.lane = request.lane;
      context.has_deadline = request.deadline_ns != 0;
      context.deadline_slack_ns =
          request.deadline_ns != 0 ? request.deadline_ns - now : 0;
      context.submit_blocked =
          static_cast<std::uint64_t>(submit_blocked_.value());
      context.try_submit_rejected =
          static_cast<std::uint64_t>(try_submit_rejected_.value());
      if (options_.shed_policy->should_shed(context)) {
        return ServeStatus::kShed;
      }
    }
    return std::nullopt;
  }

  // A refusal still gets a ticket and a typed Served result on the
  // completion stream — never a silent drop. The job never touches
  // outstanding_ (it was never queued), but cv_done_ wakes consumers
  // parked in next()/drain().
  std::uint64_t finish_rejected(const std::string& model_key,
                                const RequestOptions& request,
                                ServeStatus status) COMET_REQUIRES(mutex_) {
    const std::uint64_t ticket = next_id_++;
    Served served;
    served.id = ticket;
    served.model_key = model_key;
    served.status = status;
    served.lane = request.lane;
    served.deadline_ns = request.deadline_ns;
    if (options_.metrics) {
      submitted_.increment();
      served.trace.admit_ns = clock_.now_ns();
      if (status == ServeStatus::kShed) {
        metrics_
            .counter(obs::MetricsRegistry::labeled("serve_shed", "lane",
                                                   lane_name(request.lane)))
            .increment();
      } else {
        metrics_
            .counter(obs::MetricsRegistry::labeled("serve_deadline_expired",
                                                   "stage", "admit"))
            .increment();
      }
    }
    completed_.push_back(std::move(served));
    cv_done_.notify_all();
    return ticket;
  }

  // Caller has verified queue space (and, per the annotation, holds mutex_).
  std::uint64_t enqueue(const std::string& model_key,
                        std::shared_ptr<const Model> model, Block block,
                        Options options, const RequestOptions& request_options)
      COMET_REQUIRES(mutex_) {
    const std::uint64_t ticket = next_id_++;
    Request request;
    request.id = ticket;
    request.model_key = model_key;
    request.model = std::move(model);
    request.block = std::move(block);
    request.options = std::move(options);
    request.lane = request_options.lane;
    request.deadline_ns = request_options.deadline_ns;
    if (options_.metrics) {
      request.admit_ns = clock_.now_ns();
      submitted_.increment();
    }
    lane_queue(request.lane).push_back(std::move(request));
    ++outstanding_;
    if (options_.metrics) {
      queue_depth_.set(static_cast<double>(queued()));
      lane_depth(request_options.lane)
          .set(static_cast<double>(lane_queue(request_options.lane).size()));
      outstanding_gauge_.set(static_cast<double>(outstanding_));
    }
    cv_work_.notify_one();
    return ticket;
  }

  // Which lane the next free worker should serve. Interactive first;
  // with both lanes waiting, one dequeue in every batch_credit_every is
  // batch (anti-starvation). A batch dequeue resets the credit either
  // way, so an idle period can't bank more than one batch turn.
  Lane pick_lane() COMET_REQUIRES(mutex_) {
    const bool interactive = !lane_queue(Lane::kInteractive).empty();
    const bool batch = !lane_queue(Lane::kBatch).empty();
    if (interactive && batch) {
      const std::size_t every =
          options_.batch_credit_every == 0 ? 1 : options_.batch_credit_every;
      if (batch_credit_ + 1 >= every) {
        batch_credit_ = 0;
        return Lane::kBatch;
      }
      ++batch_credit_;
      return Lane::kInteractive;
    }
    if (batch) {
      batch_credit_ = 0;
      return Lane::kBatch;
    }
    return Lane::kInteractive;
  }

  // Delivery stamp: the last lifecycle timestamp, taken as the result
  // leaves next()/drain(). deliver - done is how long a finished result
  // waited for its consumer.
  void stamp_delivery(Served& served) {
    if (!options_.metrics) return;
    served.trace.deliver_ns = clock_.now_ns();
    deliver_wait_ns_.record(served.trace.deliver_ns - served.trace.done_ns);
  }

  void worker_loop() COMET_EXCLUDES(mutex_) {
    for (;;) {
      Request request;
      {
        util::MutexLock lock(mutex_);
        // Worker parking loop; woken by new work or shutdown, both of
        // which always arrive.
        // comet-lint: allow(unbounded-wait)
        while (!stopping_ && queued() == 0) cv_work_.wait(lock);
        if (queued() == 0) return;  // stopping and fully drained
        const Lane lane = pick_lane();
        request = std::move(lane_queue(lane).front());
        lane_queue(lane).pop_front();
        if (options_.metrics) {
          queue_depth_.set(static_cast<double>(queued()));
          lane_depth(lane).set(
              static_cast<double>(lane_queue(lane).size()));
        }
        cv_space_.notify_one();
      }
      Served served;
      served.id = request.id;
      served.model_key = std::move(request.model_key);
      served.lane = request.lane;
      served.deadline_ns = request.deadline_ns;
      served.trace.admit_ns = request.admit_ns;
      // Queue expiry: the deadline passed while the job waited for a
      // worker. Typed result, no engine run. (Clock read gated on the
      // deadline's presence, like every deadline check.)
      std::uint64_t dequeue_now = 0;
      if (request.deadline_ns != 0) {
        dequeue_now = clock_.now_ns();
        if (dequeue_now >= request.deadline_ns) {
          served.status = ServeStatus::kDeadlineExceededInQueue;
          if (options_.metrics) {
            served.trace.start_ns = dequeue_now;
            served.trace.done_ns = dequeue_now;
            completed_count_.increment();
            metrics_
                .counter(obs::MetricsRegistry::labeled(
                    "serve_deadline_expired", "stage", "queue"))
                .increment();
          }
          finish(std::move(served), /*ran=*/false);
          continue;
        }
      }
      // The engine references the request's model and options for the
      // duration of the run; both live in `request` on this stack frame.
      Engine engine(*request.model, request.options);
      if (options_.metrics) served.trace.start_ns = clock_.now_ns();
      served.explanation = engine.explain(request.block);
      // Run expiry is only a label: the explanation completed, so it is
      // delivered (bit-identical to sequential) — just marked late.
      if (request.deadline_ns != 0 &&
          clock_.now_ns() >= request.deadline_ns) {
        served.status = ServeStatus::kLate;
        if (options_.metrics) deadline_late_.increment();
      }
      if (options_.metrics) {
        served.trace.done_ns = clock_.now_ns();
        completed_count_.increment();
        // Per-model-key latency histograms; resolved by name per completion
        // (an engine run dwarfs one map lookup).
        metrics_
            .histogram(obs::MetricsRegistry::labeled(
                "serve_queue_wait_ns", "model_key", served.model_key))
            .record(served.trace.queue_wait_ns());
        metrics_
            .histogram(obs::MetricsRegistry::labeled(
                "serve_run_ns", "model_key", served.model_key))
            .record(served.trace.run_ns());
      }
      finish(std::move(served), /*ran=*/true);
    }
  }

  // Completion-side bookkeeping shared by the ran and expired-in-queue
  // paths: publish the result, retire the ticket, wake consumers.
  void finish(Served served, bool ran) COMET_EXCLUDES(mutex_) {
    {
      util::MutexLock lock(mutex_);
      if (ran) stats_[served.model_key] += served.explanation.query_stats;
      completed_.push_back(std::move(served));
      --outstanding_;
      if (options_.metrics) {
        outstanding_gauge_.set(static_cast<double>(outstanding_));
      }
    }
    cv_done_.notify_all();
  }

  ServeOptions options_;     // immutable after construction
  const obs::Clock& clock_;  // stateless or internally synchronized
  // Instruments are internally synchronized (one util::Mutex each) and the
  // registry map is lock-protected, so none of this needs mutex_. The
  // handles below are resolved once; hot paths increment through them.
  obs::MetricsRegistry metrics_;
  obs::Counter& submitted_ = metrics_.counter("serve_submitted");
  obs::Counter& completed_count_ = metrics_.counter("serve_completed");
  obs::Counter& submit_blocked_ = metrics_.counter("serve_submit_blocked");
  obs::Counter& try_submit_rejected_ =
      metrics_.counter("serve_try_submit_rejected");
  obs::Gauge& queue_depth_ = metrics_.gauge("serve_queue_depth");
  obs::Gauge& outstanding_gauge_ = metrics_.gauge("serve_outstanding");
  obs::Histogram& deliver_wait_ns_ =
      metrics_.histogram("serve_deliver_wait_ns");
  obs::Counter& deadline_late_ = metrics_.counter("serve_deadline_late");
  obs::Gauge& interactive_depth_ = metrics_.gauge(
      obs::MetricsRegistry::labeled("serve_lane_depth", "lane", "interactive"));
  obs::Gauge& batch_depth_ = metrics_.gauge(
      obs::MetricsRegistry::labeled("serve_lane_depth", "lane", "batch"));

  obs::Gauge& lane_depth(Lane lane) {
    return lane == Lane::kInteractive ? interactive_depth_ : batch_depth_;
  }

  mutable util::Mutex mutex_;
  util::CondVar cv_work_;   // queue gained work / stopping
  util::CondVar cv_space_;  // queue gained space
  util::CondVar cv_done_;   // a job completed
  std::map<std::string, std::shared_ptr<const Model>> models_
      COMET_GUARDED_BY(mutex_);
  /// Two-lane admission queue, indexed by Lane; queue_capacity bounds the
  /// lanes' combined size.
  std::array<std::deque<Request>, 2> lanes_ COMET_GUARDED_BY(mutex_);
  std::size_t batch_credit_ COMET_GUARDED_BY(mutex_) = 0;
  std::deque<Served> completed_ COMET_GUARDED_BY(mutex_);
  std::map<std::string, cost::QueryStats> stats_ COMET_GUARDED_BY(mutex_);
  std::size_t outstanding_ COMET_GUARDED_BY(mutex_) = 0;
  std::uint64_t next_id_ COMET_GUARDED_BY(mutex_) = 1;
  bool stopping_ COMET_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;  // written only in the constructor
};

}  // namespace comet::serve
