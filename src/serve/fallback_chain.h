// FallbackChain: graceful degradation for the cost-model layer.
//
// An ordered chain of cost-model tiers — typically remote shards → a
// local replica → the crude analytical model — presented as one
// cost::CostModel. Every predict/predict_batch walks the tiers in order:
// the first tier to answer wins; a tier that fails with a transport-
// class error (net::TransportError and subclasses, or a peer-contract
// util::ContractViolation) is recorded and the next tier is tried. A
// fully partitioned deployment therefore still answers — with a
// documented lower-fidelity tier — instead of throwing at the engine.
//
// What is NOT failed over, matching RemoteShardClient's semantics:
// net::CancelledError (the caller asked to stop; obeying it is not a
// failure) and non-transport exceptions (a model bug must surface, not
// be papered over by a lower tier). If the *last* tier fails, its error
// propagates — there is nothing left to degrade to.
//
// Determinism caveat, stated up front: tiers are different models, so a
// result served by tier k is bit-identical to *that tier's* sequential
// result, not to tier 0's. Deployments that need strict bit-parity with
// the primary (the serving determinism tests) must make every tier the
// same model-by-construction (e.g. remote shard and local replica built
// from the same checkpoint — exactly how the tests wire it).
//
// Per-tier accounting (attempts/successes/errors) is guarded state,
// snapshotted via tier_counters(); the chain itself is const-thread-safe
// as long as every tier is.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "util/sync.h"

namespace comet::serve {

class FallbackChain final : public cost::CostModel {
 public:
  struct Tier {
    std::string label;  ///< e.g. "remote", "replica", "crude"
    std::shared_ptr<const cost::CostModel> model;
  };

  struct TierCounters {
    std::string label;
    std::uint64_t attempts = 0;   ///< batches routed to this tier
    std::uint64_t successes = 0;  ///< batches it answered
    std::uint64_t errors = 0;     ///< transport-class failures (failed over)
  };

  /// At least one tier; tier 0 is the preferred (highest-fidelity) one.
  explicit FallbackChain(std::vector<Tier> tiers);

  double predict(const x86::BasicBlock& block) const override;
  void predict_batch(std::span<const x86::BasicBlock> blocks,
                     std::span<double> out) const override;
  /// "fallback(remote->replica->crude)".
  std::string name() const override;

  std::size_t tier_count() const { return tiers_.size(); }

  /// Per-tier accounting, in chain order.
  std::vector<TierCounters> tier_counters() const;

 private:
  std::vector<Tier> tiers_;
  mutable util::Mutex mutex_;
  mutable std::vector<TierCounters> counters_ COMET_GUARDED_BY(mutex_);
};

}  // namespace comet::serve
