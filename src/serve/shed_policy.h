// Load shedding for the serving admission queue.
//
// A ShedPolicy decides, at admission time, whether the server should
// refuse a job outright instead of queueing it. The decision sees the
// same saturation signals the operator sees on a dashboard — live queue
// depth against capacity, and the cumulative backpressure counters
// (serve_submit_blocked / serve_try_submit_rejected) — plus the job's
// own traffic class (lane, deadline slack). A shed job is never a
// silent drop: the server delivers a typed Served result with
// ServeStatus::kShed and counts it per lane in the metrics registry.
//
// Policies must be const-thread-safe: should_shed() is called under the
// server's admission lock from every producer thread. Keep them
// stateless (WatermarkShedPolicy is) or internally synchronized.
#pragma once

#include <cstddef>
#include <cstdint>

namespace comet::serve {

/// Traffic class of a serving request. Interactive is the latency-
/// sensitive lane (dequeued first); batch is throughput traffic that
/// absorbs shedding and queueing delay when the server saturates.
enum class Lane : std::uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

inline const char* lane_name(Lane lane) {
  return lane == Lane::kInteractive ? "interactive" : "batch";
}

/// Everything a policy may consult for one admission decision.
struct ShedContext {
  std::size_t queue_depth = 0;     ///< jobs queued across both lanes
  std::size_t queue_capacity = 0;  ///< admission-queue bound
  Lane lane = Lane::kInteractive;  ///< the candidate job's lane
  bool has_deadline = false;       ///< candidate carries a deadline
  /// Remaining budget (deadline - now) at admission; 0 without a
  /// deadline. Already-expired jobs never reach the policy — the server
  /// rejects those first with a typed deadline result.
  std::uint64_t deadline_slack_ns = 0;
  /// Cumulative backpressure counters (serve_submit_blocked /
  /// serve_try_submit_rejected) at decision time. Zero while the server
  /// runs with metrics off.
  std::uint64_t submit_blocked = 0;
  std::uint64_t try_submit_rejected = 0;
};

class ShedPolicy {
 public:
  virtual ~ShedPolicy() = default;

  /// True to refuse the job (the server delivers ServeStatus::kShed).
  virtual bool should_shed(const ShedContext& context) const = 0;
};

/// The default production policy: two watermarks over queue occupancy.
///
///   * Above `batch_watermark` (fraction of capacity), batch-lane jobs
///     are shed — interactive traffic keeps the remaining headroom.
///   * Above `saturation_watermark`, deadline-infeasible jobs (slack
///     below `min_slack_ns`) are shed from either lane: they would
///     expire in the queue anyway, so admitting them only burns queue
///     slots, and batch-lane jobs are shed regardless of slack.
///
/// Interactive jobs without a deadline are never shed — they fall back
/// to ordinary backpressure (submit blocks / try_submit rejects).
class WatermarkShedPolicy final : public ShedPolicy {
 public:
  struct Options {
    double batch_watermark = 0.5;
    double saturation_watermark = 0.875;
    std::uint64_t min_slack_ns = 0;  ///< 0 = no infeasibility shedding
  };

  WatermarkShedPolicy() = default;
  explicit WatermarkShedPolicy(Options options) : options_(options) {}

  bool should_shed(const ShedContext& context) const override;

 private:
  Options options_;
};

}  // namespace comet::serve
