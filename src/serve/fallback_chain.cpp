#include "serve/fallback_chain.h"

#include <utility>

#include "net/transport.h"
#include "util/contract.h"

namespace comet::serve {

FallbackChain::FallbackChain(std::vector<Tier> tiers)
    : tiers_(std::move(tiers)) {
  COMET_CHECK_MSG(!tiers_.empty(), "FallbackChain needs at least one tier");
  for (const Tier& tier : tiers_) {
    COMET_CHECK_MSG(tier.model != nullptr,
                    "FallbackChain tier '" << tier.label << "' has no model");
  }
  util::MutexLock lock(mutex_);
  counters_.resize(tiers_.size());
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    counters_[t].label = tiers_[t].label;
  }
}

void FallbackChain::predict_batch(std::span<const x86::BasicBlock> blocks,
                                  std::span<double> out) const {
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    {
      util::MutexLock lock(mutex_);
      ++counters_[t].attempts;
    }
    try {
      tiers_[t].model->predict_batch(blocks, out);
      util::MutexLock lock(mutex_);
      ++counters_[t].successes;
      return;
    } catch (const net::CancelledError&) {
      throw;  // the caller cancelled; never failed over
    } catch (const net::TransportError&) {
      util::MutexLock lock(mutex_);
      ++counters_[t].errors;
      if (t + 1 == tiers_.size()) throw;  // nothing left to degrade to
    } catch (const util::ContractViolation&) {
      // Peer-contract breakage (a malformed reply) is a transport-class
      // failure here, same as in RemoteShardClient.
      util::MutexLock lock(mutex_);
      ++counters_[t].errors;
      if (t + 1 == tiers_.size()) throw;
    }
  }
}

double FallbackChain::predict(const x86::BasicBlock& block) const {
  double out = 0.0;
  predict_batch(std::span<const x86::BasicBlock>(&block, 1),
                std::span<double>(&out, 1));
  return out;
}

std::string FallbackChain::name() const {
  std::string name = "fallback(";
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    if (t != 0) name += "->";
    name += tiers_[t].label;
  }
  name += ")";
  return name;
}

std::vector<FallbackChain::TierCounters> FallbackChain::tier_counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

}  // namespace comet::serve
