// Ready-made ExplanationServer instantiations for both ISAs.
//
// The server template is ISA-generic for the same reason the engine is
// (paper Section 7's portability claim): nothing in scheduling, flow
// control, or result delivery mentions the ISA. These aliases are the
// shared served path of CometExplainer and RvExplainer — register models,
// submit (block, model-key, options) jobs, collect completion-ordered
// explanations.
//
//   serve::X86ExplanationServer server({.workers = 4});
//   server.register_model("crude-hsw", crude);       // plain shared model
//   server.register_model("oracle-hsw", sharded);    // or a ShardedCostModel
//   server.submit("crude-hsw", block, options);
//   while (auto r = server.next()) { ... }
#pragma once

#include "core/comet.h"
#include "riscv/explain.h"
#include "serve/explanation_server.h"

namespace comet::serve {

/// Serves x86 jobs against any cost::CostModel (including ShardedCostModel
/// pools); one model key per registered (model kind, µarch) instance.
using X86ExplanationServer = ExplanationServer<core::CometExplainer::Traits>;

/// Serves RISC-V jobs against RvCostModel instances.
using RvExplanationServer = ExplanationServer<riscv::RvExplainer::Traits>;

}  // namespace comet::serve
