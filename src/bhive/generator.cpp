#include "bhive/generator.h"

#include <algorithm>
#include <stdexcept>

namespace comet::bhive {

namespace {

using x86::OpClass;
using x86::Opcode;
using x86::Operand;
using x86::Reg;
using x86::RegClass;
using x86::RegFamily;

struct WeightedOp {
  Opcode op;
  double weight;
};

// Clang-like profile: scalar integer, moves, address computation, the
// occasional multiply/divide/stack operation.
const std::vector<WeightedOp>& clang_pool() {
  static const std::vector<WeightedOp> pool = {
      {Opcode::MOV, 22},   {Opcode::ADD, 12},   {Opcode::SUB, 8},
      {Opcode::LEA, 10},   {Opcode::AND, 4},    {Opcode::OR, 3},
      {Opcode::XOR, 5},    {Opcode::CMP, 4},    {Opcode::TEST, 3},
      {Opcode::MOVZX, 4},  {Opcode::MOVSX, 2},  {Opcode::IMUL, 4},
      {Opcode::SHL, 3},    {Opcode::SHR, 3},    {Opcode::SAR, 1.5},
      {Opcode::INC, 2},    {Opcode::DEC, 2},    {Opcode::NEG, 1},
      {Opcode::PUSH, 2},   {Opcode::POP, 2},    {Opcode::CMOVE, 1.5},
      {Opcode::CMOVNE, 1}, {Opcode::POPCNT, 1}, {Opcode::DIV, 1.2},
      {Opcode::NOP, 0.5},  {Opcode::BSWAP, 0.5},
  };
  return pool;
}

// OpenBLAS-like profile: vector/scalar FP kernels with FMA and tight
// dependency chains, plus a little integer address arithmetic.
const std::vector<WeightedOp>& openblas_pool() {
  static const std::vector<WeightedOp> pool = {
      {Opcode::VMULSS, 8},      {Opcode::VADDSS, 8},
      {Opcode::VFMADD231SS, 6}, {Opcode::VFMADD231PS, 6},
      {Opcode::VMULPS, 6},      {Opcode::VADDPS, 6},
      {Opcode::MULSS, 4},       {Opcode::ADDSS, 4},
      {Opcode::MULSD, 3},       {Opcode::ADDSD, 3},
      {Opcode::MOVSS, 5},       {Opcode::MOVAPS, 4},
      {Opcode::VMOVUPS, 4},     {Opcode::VMOVAPS, 3},
      {Opcode::VXORPS, 2},      {Opcode::XORPS, 1.5},
      {Opcode::VDIVSS, 1.5},    {Opcode::DIVSD, 1},
      {Opcode::SQRTSS, 0.8},    {Opcode::UNPCKLPS, 1},
      {Opcode::SHUFPS, 1},      {Opcode::PADDD, 1.5},
      {Opcode::PMULLD, 1},      {Opcode::ADD, 5},
      {Opcode::LEA, 4},         {Opcode::MOV, 6},
      {Opcode::CVTSI2SS, 1},    {Opcode::CVTTSS2SI, 1},
  };
  return pool;
}

Opcode pick_weighted(const std::vector<WeightedOp>& pool, util::Rng& rng) {
  double total = 0;
  for (const auto& w : pool) total += w.weight;
  double roll = rng.uniform(0, total);
  for (const auto& w : pool) {
    roll -= w.weight;
    if (roll <= 0) return w.op;
  }
  return pool.back().op;
}

RegFamily pick_family(const std::vector<RegFamily>& live,
                      const std::vector<RegFamily>& pool, double p_reuse,
                      util::Rng& rng) {
  if (!live.empty() && rng.bernoulli(p_reuse)) return rng.pick(live);
  return rng.pick(pool);
}

}  // namespace

std::string source_name(BlockSource source) {
  switch (source) {
    case BlockSource::Clang: return "Clang";
    case BlockSource::OpenBLAS: return "OpenBLAS";
  }
  return "?";
}

std::string category_name(BlockCategory category) {
  switch (category) {
    case BlockCategory::Load: return "Load";
    case BlockCategory::Store: return "Store";
    case BlockCategory::LoadStore: return "Load/Store";
    case BlockCategory::Scalar: return "Scalar";
    case BlockCategory::Vector: return "Vector";
    case BlockCategory::ScalarVector: return "Scalar/Vector";
  }
  return "?";
}

BlockCategory classify(const x86::BasicBlock& block) {
  bool load = false, store = false, scalar = false, vec = false;
  for (const auto& inst : block.instructions) {
    const auto sem = x86::semantics(inst);
    load |= (sem.mem && sem.mem->read) || sem.stack_mem_read;
    store |= (sem.mem && sem.mem->write) || sem.stack_mem_write;
    bool inst_vec = false;
    for (const auto& op : inst.operands) {
      if (op.is_reg() && x86::reg_class(op.as_reg()) == RegClass::Vec) {
        inst_vec = true;
      }
    }
    vec |= inst_vec;
    scalar |= !inst_vec && x86::info(inst.opcode).cls != OpClass::Nop;
  }
  if (load && store) return BlockCategory::LoadStore;
  if (load) return BlockCategory::Load;
  if (store) return BlockCategory::Store;
  if (vec && scalar) return BlockCategory::ScalarVector;
  if (vec) return BlockCategory::Vector;
  return BlockCategory::Scalar;
}

BlockGenerator::BlockGenerator(GeneratorOptions options)
    : options_(options) {}

x86::Instruction BlockGenerator::generate_instruction(
    util::Rng& rng, std::vector<RegFamily>& live_gpr,
    std::vector<RegFamily>& live_vec,
    std::vector<x86::MemOperand>& recent_mem, bool allow_mem) const {
  const auto& pool = options_.source == BlockSource::Clang ? clang_pool()
                                                           : openblas_pool();
  for (int attempt = 0; attempt < 64; ++attempt) {
    const Opcode op = pick_weighted(pool, rng);
    const auto& inf = x86::info(op);

    // Choose a signature: prefer register forms; take a memory form with
    // probability p_mem when allowed.
    std::vector<const x86::Signature*> reg_sigs, mem_sigs;
    for (const auto& s : inf.signatures) {
      bool has_mem = false;
      for (const auto& slot : s.slots) {
        if (slot.kinds == x86::kKindMem) has_mem = true;
      }
      (has_mem ? mem_sigs : reg_sigs).push_back(&s);
    }
    const x86::Signature* sig = nullptr;
    const bool want_mem =
        allow_mem && !mem_sigs.empty() && rng.bernoulli(options_.p_mem);
    if (want_mem) {
      sig = mem_sigs[rng.index(mem_sigs.size())];
    } else if (!reg_sigs.empty()) {
      sig = reg_sigs[rng.index(reg_sigs.size())];
    } else if (allow_mem && !mem_sigs.empty()) {
      sig = mem_sigs[rng.index(mem_sigs.size())];
    } else {
      continue;  // opcode only has memory forms and memory is disallowed
    }

    // Common width for same_width signatures: prefer 64/32 for GPR forms.
    std::uint16_t width = rng.bernoulli(0.6) ? 64 : 32;

    x86::Instruction inst;
    inst.opcode = op;
    bool failed = false;
    for (const auto& slot : sig->slots) {
      if (slot.kinds & x86::kKindImm && !(slot.kinds & x86::kKindReg) &&
          !(slot.kinds & x86::kKindMem)) {
        inst.operands.push_back(Operand::imm(rng.range(1, 63)));
        continue;
      }
      const bool use_mem =
          (slot.kinds & x86::kKindMem) &&
          (!(slot.kinds & x86::kKindReg) || (want_mem && allow_mem));
      if (use_mem) {
        x86::MemOperand m;
        // Real code frequently re-touches the same address (spill/reload,
        // store-forwarding); reuse a recent address expression sometimes.
        if (!recent_mem.empty() && rng.bernoulli(0.35)) {
          m = rng.pick(recent_mem);
        } else {
          m.base = Reg{pick_family(live_gpr, x86::substitutable_gpr_families(),
                                   options_.p_reuse, rng),
                       64, false};
          m.disp = 8 * rng.range(0, 24);
        }
        // Memory width: intersect the slot's size mask with the common
        // width; otherwise take the largest allowed size.
        if (slot.sizes & x86::size_bit(width)) {
          m.size_bits = width;
        } else {
          for (std::uint16_t bits : {256, 128, 64, 32, 16, 8}) {
            if (slot.sizes & x86::size_bit(bits)) {
              m.size_bits = bits;
              break;
            }
          }
        }
        inst.operands.push_back(Operand::mem(m));
        if (recent_mem.size() < 4) recent_mem.push_back(m);
        continue;
      }
      // Register slot. Write-only destinations favour fresh registers
      // (compiler output rarely clobbers a live register), which keeps the
      // dependency structure RAW-dominant like real code; read and
      // read-modify-write slots favour recently written registers to form
      // chains.
      const bool write_only =
          (slot.access & x86::kWrite) && !(slot.access & x86::kRead);
      const double reuse_p = write_only ? 0.12 : options_.p_reuse;
      if (slot.reg_cls == RegClass::Vec) {
        std::uint16_t vw = (slot.sizes & x86::size_bit(128)) ? 128 : 256;
        const RegFamily fam = slot.fixed_family
                                  ? *slot.fixed_family
                                  : pick_family(live_vec, x86::vec_families(),
                                                reuse_p, rng);
        inst.operands.push_back(Operand::reg(Reg{fam, vw, false}));
      } else {
        std::uint16_t w = width;
        if (!(slot.sizes & x86::size_bit(w))) {
          for (std::uint16_t bits : {64, 32, 16, 8}) {
            if (slot.sizes & x86::size_bit(bits)) {
              w = bits;
              break;
            }
          }
        }
        if (sig->src_smaller && inst.operands.size() == 1) {
          // Source of movzx/movsx must be narrower than the destination.
          const auto dst_w = inst.operands[0].size_bits();
          w = dst_w > 16 ? 8 : 8;
          if (!(slot.sizes & x86::size_bit(w))) w = 16;
          if (w >= dst_w) {
            failed = true;
            break;
          }
        }
        const RegFamily fam =
            slot.fixed_family
                ? *slot.fixed_family
                : pick_family(live_gpr, x86::substitutable_gpr_families(),
                              reuse_p, rng);
        inst.operands.push_back(Operand::reg(Reg{fam, w, false}));
      }
    }
    if (failed || !x86::is_valid(inst)) continue;

    // Track explicit destination operands for dependency-chain reuse.
    // Implicit writes (div/mul clobbering rax/rdx) are excluded: compiler
    // output does not typically address memory off a fresh quotient, and
    // including them skews blocks toward pathological implicit-dependency
    // structures.
    const x86::Signature* isig = x86::find_signature(op, inst.operands);
    for (std::size_t sl = 0; isig != nullptr && sl < inst.operands.size();
         ++sl) {
      if (!(isig->slots[sl].access & x86::kWrite)) continue;
      const auto& opnd = inst.operands[sl];
      if (!opnd.is_reg()) continue;
      const auto fam = opnd.as_reg().family;
      if (x86::is_stack_family(fam)) continue;
      auto& live = x86::reg_class(opnd.as_reg()) == RegClass::Vec ? live_vec
                                                                  : live_gpr;
      if (std::find(live.begin(), live.end(), fam) == live.end()) {
        live.push_back(fam);
        if (live.size() > 4) live.erase(live.begin());
      }
    }
    return inst;
  }
  // Fallback: an unconditionally valid instruction.
  x86::Instruction inst;
  inst.opcode = Opcode::MOV;
  inst.operands = {Operand::reg(Reg{RegFamily::RAX, 64, false}),
                   Operand::imm(1)};
  return inst;
}

x86::BasicBlock BlockGenerator::generate(util::Rng& rng) const {
  const std::size_t n = static_cast<std::size_t>(
      rng.range(static_cast<std::int64_t>(options_.min_insts),
                static_cast<std::int64_t>(options_.max_insts)));
  x86::BasicBlock block;
  std::vector<RegFamily> live_gpr, live_vec;
  std::vector<x86::MemOperand> recent_mem;
  const bool allow_mem = rng.bernoulli(0.75);
  for (std::size_t i = 0; i < n; ++i) {
    block.instructions.push_back(
        generate_instruction(rng, live_gpr, live_vec, recent_mem, allow_mem));
  }
  return block;
}

}  // namespace comet::bhive
