// Labeled synthetic BHive-like dataset: generated blocks annotated with
// "hardware-measured" throughput (oracle simulator + deterministic
// measurement noise) per microarchitecture, plus source and category tags
// for the paper's partitioned analyses (Figures 3-4).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bhive/generator.h"
#include "cost/cost_model.h"
#include "x86/instruction.h"

namespace comet::bhive {

struct LabeledBlock {
  x86::BasicBlock block;
  double measured_hsw = 0.0;
  double measured_skl = 0.0;
  BlockSource source = BlockSource::Clang;
  BlockCategory category = BlockCategory::Scalar;

  double measured(cost::MicroArch uarch) const {
    return uarch == cost::MicroArch::Haswell ? measured_hsw : measured_skl;
  }
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<LabeledBlock> blocks);

  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  const LabeledBlock& operator[](std::size_t i) const { return blocks_[i]; }
  const std::vector<LabeledBlock>& blocks() const { return blocks_; }

  /// Sub-dataset filters.
  Dataset by_source(BlockSource source) const;
  Dataset by_category(BlockCategory category) const;

  /// Random sample without replacement; at most `n` items.
  Dataset sample(std::size_t n, util::Rng& rng) const;

  /// First `n` items (deterministic head).
  Dataset head(std::size_t n) const;

  /// Plain block and label views (for model training).
  std::vector<x86::BasicBlock> block_views() const;
  std::vector<double> label_views(cost::MicroArch uarch) const;

 private:
  std::vector<LabeledBlock> blocks_;
};

struct DatasetOptions {
  std::size_t size = 3000;
  std::uint64_t seed = 2024;
  double clang_fraction = 0.5;  ///< remaining blocks are OpenBLAS-profile
  std::size_t min_insts = 4;
  std::size_t max_insts = 10;
};

/// Generate a labeled dataset (deterministic for a given options struct).
Dataset generate_dataset(const DatasetOptions& options = {});

/// The 200-block explanation test set used throughout Section 6:
/// a random sample of blocks with 4-10 instructions.
Dataset explanation_test_set(const Dataset& dataset, std::size_t n,
                             std::uint64_t seed);

// ---------------------------------------------------------------------------
// Text interchange format, so labeled datasets can move between processes
// and shared caches (and, with the networked front-end, between hosts).
//
//   comet-bhive v1
//   # optional comments and blank lines
//   <hsw> <TAB> <skl> <TAB> <source> <TAB> <category> <TAB> i1; i2; ...
//
// Instructions are Intel-syntax x86, ';'-separated. parse_dataset_text is
// an untrusted-input surface (fuzz_bhive_dataset): structural violations —
// bad header, non-finite or absurd labels, unknown source/category names,
// empty or oversized blocks — throw util::ContractViolation; malformed
// instructions throw x86::ParseError. Round-trip: parse(to_text(d)) == d.

/// Serialize to the text interchange format.
std::string to_text(const Dataset& dataset);

/// Parse the text interchange format. Throws util::ContractViolation /
/// x86::ParseError on malformed input; never aborts or over-allocates.
Dataset parse_dataset_text(std::string_view text);

/// Label sanity bound for parse_dataset_text: measured throughputs are
/// cycles per iteration of one basic block; nothing real approaches this.
inline constexpr double kMaxMeasuredCycles = 1e6;

/// Block size bound for parse_dataset_text (basic blocks are small by
/// definition; the generator tops out at tens of instructions).
inline constexpr std::size_t kMaxBlockInsts = 1024;

}  // namespace comet::bhive
