// Labeled synthetic BHive-like dataset: generated blocks annotated with
// "hardware-measured" throughput (oracle simulator + deterministic
// measurement noise) per microarchitecture, plus source and category tags
// for the paper's partitioned analyses (Figures 3-4).
#pragma once

#include <cstdint>
#include <vector>

#include "bhive/generator.h"
#include "cost/cost_model.h"
#include "x86/instruction.h"

namespace comet::bhive {

struct LabeledBlock {
  x86::BasicBlock block;
  double measured_hsw = 0.0;
  double measured_skl = 0.0;
  BlockSource source = BlockSource::Clang;
  BlockCategory category = BlockCategory::Scalar;

  double measured(cost::MicroArch uarch) const {
    return uarch == cost::MicroArch::Haswell ? measured_hsw : measured_skl;
  }
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<LabeledBlock> blocks);

  std::size_t size() const { return blocks_.size(); }
  bool empty() const { return blocks_.empty(); }
  const LabeledBlock& operator[](std::size_t i) const { return blocks_[i]; }
  const std::vector<LabeledBlock>& blocks() const { return blocks_; }

  /// Sub-dataset filters.
  Dataset by_source(BlockSource source) const;
  Dataset by_category(BlockCategory category) const;

  /// Random sample without replacement; at most `n` items.
  Dataset sample(std::size_t n, util::Rng& rng) const;

  /// First `n` items (deterministic head).
  Dataset head(std::size_t n) const;

  /// Plain block and label views (for model training).
  std::vector<x86::BasicBlock> block_views() const;
  std::vector<double> label_views(cost::MicroArch uarch) const;

 private:
  std::vector<LabeledBlock> blocks_;
};

struct DatasetOptions {
  std::size_t size = 3000;
  std::uint64_t seed = 2024;
  double clang_fraction = 0.5;  ///< remaining blocks are OpenBLAS-profile
  std::size_t min_insts = 4;
  std::size_t max_insts = 10;
};

/// Generate a labeled dataset (deterministic for a given options struct).
Dataset generate_dataset(const DatasetOptions& options = {});

/// The 200-block explanation test set used throughout Section 6:
/// a random sample of blocks with 4-10 instructions.
Dataset explanation_test_set(const Dataset& dataset, std::size_t n,
                             std::uint64_t seed);

}  // namespace comet::bhive
