#include "bhive/dataset.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "sim/models.h"
#include "util/contract.h"
#include "util/str.h"
#include "x86/parser.h"

namespace comet::bhive {

Dataset::Dataset(std::vector<LabeledBlock> blocks)
    : blocks_(std::move(blocks)) {}

Dataset Dataset::by_source(BlockSource source) const {
  std::vector<LabeledBlock> out;
  for (const auto& b : blocks_) {
    if (b.source == source) out.push_back(b);
  }
  return Dataset(std::move(out));
}

Dataset Dataset::by_category(BlockCategory category) const {
  std::vector<LabeledBlock> out;
  for (const auto& b : blocks_) {
    if (b.category == category) out.push_back(b);
  }
  return Dataset(std::move(out));
}

Dataset Dataset::sample(std::size_t n, util::Rng& rng) const {
  std::vector<std::size_t> idx(blocks_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<LabeledBlock> out;
  for (std::size_t i = 0; i < std::min(n, idx.size()); ++i) {
    out.push_back(blocks_[idx[i]]);
  }
  return Dataset(std::move(out));
}

Dataset Dataset::head(std::size_t n) const {
  std::vector<LabeledBlock> out(blocks_.begin(),
                                blocks_.begin() + std::min(n, blocks_.size()));
  return Dataset(std::move(out));
}

std::vector<x86::BasicBlock> Dataset::block_views() const {
  std::vector<x86::BasicBlock> out;
  out.reserve(blocks_.size());
  for (const auto& b : blocks_) out.push_back(b.block);
  return out;
}

std::vector<double> Dataset::label_views(cost::MicroArch uarch) const {
  std::vector<double> out;
  out.reserve(blocks_.size());
  for (const auto& b : blocks_) out.push_back(b.measured(uarch));
  return out;
}

Dataset generate_dataset(const DatasetOptions& options) {
  util::Rng rng(options.seed);
  std::vector<LabeledBlock> blocks;
  blocks.reserve(options.size);
  const std::size_t n_clang = static_cast<std::size_t>(
      static_cast<double>(options.size) * options.clang_fraction);
  for (std::size_t i = 0; i < options.size; ++i) {
    GeneratorOptions gopt;
    gopt.min_insts = options.min_insts;
    gopt.max_insts = options.max_insts;
    gopt.source = i < n_clang ? BlockSource::Clang : BlockSource::OpenBLAS;
    const BlockGenerator gen(gopt);
    LabeledBlock lb;
    lb.block = gen.generate(rng);
    lb.source = gopt.source;
    lb.category = classify(lb.block);
    lb.measured_hsw =
        sim::measured_throughput(lb.block, cost::MicroArch::Haswell);
    lb.measured_skl =
        sim::measured_throughput(lb.block, cost::MicroArch::Skylake);
    blocks.push_back(std::move(lb));
  }
  return Dataset(std::move(blocks));
}

Dataset explanation_test_set(const Dataset& dataset, std::size_t n,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return dataset.sample(n, rng);
}

namespace {

constexpr std::string_view kTextHeader = "comet-bhive v1";

std::string format_label(double v) {
  char buf[64];
  // %.17g round-trips any finite double through from_chars.
  const int n = std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf, n > 0 ? static_cast<std::size_t>(n) : 0);
}

double parse_label(std::string_view field, std::size_t line_no) {
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), v);
  COMET_CHECK_MSG(ec == std::errc{} && ptr == field.data() + field.size(),
                  "dataset line " << line_no << ": bad throughput label '"
                                  << std::string(field) << "'");
  // Reject the absurd before it propagates: a NaN label would poison every
  // MAPE downstream, and 1e300 "cycles" is a forged field, not a
  // measurement.
  COMET_CHECK_MSG(std::isfinite(v) && v >= 0.0 && v <= kMaxMeasuredCycles,
                  "dataset line " << line_no << ": throughput label "
                                  << std::string(field)
                                  << " outside [0, " << kMaxMeasuredCycles
                                  << "]");
  return v;
}

BlockSource parse_source(std::string_view field, std::size_t line_no) {
  for (const BlockSource s : {BlockSource::Clang, BlockSource::OpenBLAS}) {
    if (field == source_name(s)) return s;
  }
  COMET_CHECK_MSG(false, "dataset line " << line_no
                                         << ": unknown block source '"
                                         << std::string(field) << "'");
  return BlockSource::Clang;  // unreachable
}

BlockCategory parse_category(std::string_view field, std::size_t line_no) {
  for (const BlockCategory c :
       {BlockCategory::Load, BlockCategory::Store, BlockCategory::LoadStore,
        BlockCategory::Scalar, BlockCategory::Vector,
        BlockCategory::ScalarVector}) {
    if (field == category_name(c)) return c;
  }
  COMET_CHECK_MSG(false, "dataset line " << line_no
                                         << ": unknown block category '"
                                         << std::string(field) << "'");
  return BlockCategory::Scalar;  // unreachable
}

}  // namespace

std::string to_text(const Dataset& dataset) {
  std::string out(kTextHeader);
  out += '\n';
  for (const auto& b : dataset.blocks()) {
    out += format_label(b.measured_hsw);
    out += '\t';
    out += format_label(b.measured_skl);
    out += '\t';
    out += source_name(b.source);
    out += '\t';
    out += category_name(b.category);
    out += '\t';
    for (std::size_t i = 0; i < b.block.size(); ++i) {
      if (i) out += "; ";
      out += b.block.instructions[i].to_string();
    }
    out += '\n';
  }
  return out;
}

Dataset parse_dataset_text(std::string_view text) {
  const auto lines = util::split(text, '\n');
  std::size_t line_no = 0;
  bool saw_header = false;
  std::vector<LabeledBlock> blocks;
  for (const auto& raw : lines) {
    ++line_no;
    const auto line = util::trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (!saw_header) {
      COMET_CHECK_MSG(line == kTextHeader,
                      "dataset line " << line_no
                                      << ": expected header '" << kTextHeader
                                      << "', got '" << std::string(line)
                                      << "'");
      saw_header = true;
      continue;
    }
    const auto fields = util::split(line, '\t');
    COMET_CHECK_MSG(fields.size() == 5,
                    "dataset line " << line_no << ": expected 5 tab-separated"
                                    << " fields, got " << fields.size());
    LabeledBlock lb;
    lb.measured_hsw = parse_label(util::trim(fields[0]), line_no);
    lb.measured_skl = parse_label(util::trim(fields[1]), line_no);
    lb.source = parse_source(util::trim(fields[2]), line_no);
    lb.category = parse_category(util::trim(fields[3]), line_no);
    const auto insts = util::split(fields[4], ';');
    COMET_CHECK_MSG(insts.size() <= kMaxBlockInsts,
                    "dataset line " << line_no << ": block claims "
                                    << insts.size() << " instructions (max "
                                    << kMaxBlockInsts << ")");
    for (const auto& inst_text : insts) {
      const auto trimmed = util::trim(inst_text);
      COMET_CHECK_MSG(!trimmed.empty(),
                      "dataset line " << line_no
                                      << ": empty instruction field");
      lb.block.instructions.push_back(x86::parse_instruction(trimmed));
    }
    COMET_CHECK_MSG(!lb.block.empty(),
                    "dataset line " << line_no << ": empty block");
    blocks.push_back(std::move(lb));
  }
  COMET_CHECK_MSG(saw_header, "dataset text has no '" << kTextHeader
                                                      << "' header");
  return Dataset(std::move(blocks));
}

}  // namespace comet::bhive
