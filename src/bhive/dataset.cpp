#include "bhive/dataset.h"

#include <algorithm>

#include "sim/models.h"

namespace comet::bhive {

Dataset::Dataset(std::vector<LabeledBlock> blocks)
    : blocks_(std::move(blocks)) {}

Dataset Dataset::by_source(BlockSource source) const {
  std::vector<LabeledBlock> out;
  for (const auto& b : blocks_) {
    if (b.source == source) out.push_back(b);
  }
  return Dataset(std::move(out));
}

Dataset Dataset::by_category(BlockCategory category) const {
  std::vector<LabeledBlock> out;
  for (const auto& b : blocks_) {
    if (b.category == category) out.push_back(b);
  }
  return Dataset(std::move(out));
}

Dataset Dataset::sample(std::size_t n, util::Rng& rng) const {
  std::vector<std::size_t> idx(blocks_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<LabeledBlock> out;
  for (std::size_t i = 0; i < std::min(n, idx.size()); ++i) {
    out.push_back(blocks_[idx[i]]);
  }
  return Dataset(std::move(out));
}

Dataset Dataset::head(std::size_t n) const {
  std::vector<LabeledBlock> out(blocks_.begin(),
                                blocks_.begin() + std::min(n, blocks_.size()));
  return Dataset(std::move(out));
}

std::vector<x86::BasicBlock> Dataset::block_views() const {
  std::vector<x86::BasicBlock> out;
  out.reserve(blocks_.size());
  for (const auto& b : blocks_) out.push_back(b.block);
  return out;
}

std::vector<double> Dataset::label_views(cost::MicroArch uarch) const {
  std::vector<double> out;
  out.reserve(blocks_.size());
  for (const auto& b : blocks_) out.push_back(b.measured(uarch));
  return out;
}

Dataset generate_dataset(const DatasetOptions& options) {
  util::Rng rng(options.seed);
  std::vector<LabeledBlock> blocks;
  blocks.reserve(options.size);
  const std::size_t n_clang = static_cast<std::size_t>(
      static_cast<double>(options.size) * options.clang_fraction);
  for (std::size_t i = 0; i < options.size; ++i) {
    GeneratorOptions gopt;
    gopt.min_insts = options.min_insts;
    gopt.max_insts = options.max_insts;
    gopt.source = i < n_clang ? BlockSource::Clang : BlockSource::OpenBLAS;
    const BlockGenerator gen(gopt);
    LabeledBlock lb;
    lb.block = gen.generate(rng);
    lb.source = gopt.source;
    lb.category = classify(lb.block);
    lb.measured_hsw =
        sim::measured_throughput(lb.block, cost::MicroArch::Haswell);
    lb.measured_skl =
        sim::measured_throughput(lb.block, cost::MicroArch::Skylake);
    blocks.push_back(std::move(lb));
  }
  return Dataset(std::move(blocks));
}

Dataset explanation_test_set(const Dataset& dataset, std::size_t n,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  return dataset.sample(n, rng);
}

}  // namespace comet::bhive
