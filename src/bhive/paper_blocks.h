// The basic blocks printed in the paper, embedded verbatim, so the case
// studies (Section 6.4) and the perturbation-space estimates (Appendix F)
// run on exactly the published inputs.
#pragma once

#include "x86/instruction.h"

namespace comet::bhive {

/// Listing 1(a): motivating example (Section 3).
x86::BasicBlock listing1_motivating();

/// Listing 2: case study 1 (store-bound block).
x86::BasicBlock listing2_case_study1();

/// Listing 3: case study 2 (div + dependency-heavy block).
x86::BasicBlock listing3_case_study2();

/// Listing 4: Appendix F block β1 (AVX scalar chain).
x86::BasicBlock listing4_appendixF_beta1();

/// Listing 5: Appendix F block β2 (scalar integer with div).
x86::BasicBlock listing5_appendixF_beta2();

}  // namespace comet::bhive
