// Synthetic BHive-like basic-block generator (dataset substrate).
//
// BHive (Chen et al. 2019) is a corpus of ~300k x86 basic blocks harvested
// from real software and labeled with hardware-measured throughput, with two
// partitionings: by *source* code base (e.g. Clang, OpenBLAS) and by
// *category* (Load, Store, Load/Store, Scalar, Vector, Scalar/Vector).
//
// This generator reproduces the corpus's role: it emits random, valid basic
// blocks whose instruction mix follows a source profile (Clang-like blocks
// are scalar-integer/address-computation heavy; OpenBLAS-like blocks are
// vector-FP heavy with tight dependency chains), biased toward reusing
// recently written registers so realistic RAW chains appear. Categories are
// assigned post hoc from instruction semantics, exactly as BHive labels its
// blocks.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.h"
#include "x86/instruction.h"

namespace comet::bhive {

/// Source-code-base profile the generator imitates.
enum class BlockSource : std::uint8_t { Clang, OpenBLAS };
std::string source_name(BlockSource source);

/// BHive block categories (paper Appendix H.1).
enum class BlockCategory : std::uint8_t {
  Load,
  Store,
  LoadStore,
  Scalar,
  Vector,
  ScalarVector,
};
std::string category_name(BlockCategory category);
inline constexpr std::size_t kNumCategories = 6;

/// Classify a block by its memory behaviour and operand classes, following
/// BHive's scheme: memory-touching blocks are Load / Store / Load+Store;
/// register-only blocks are Scalar / Vector / Scalar+Vector.
BlockCategory classify(const x86::BasicBlock& block);

struct GeneratorOptions {
  std::size_t min_insts = 4;
  std::size_t max_insts = 10;
  BlockSource source = BlockSource::Clang;
  /// Probability that an instruction takes a memory form (when available).
  double p_mem = 0.30;
  /// Probability that a source register is drawn from recently written
  /// registers (creates RAW chains).
  double p_reuse = 0.55;
};

/// Random-block generator. All instructions produced are catalog-valid.
class BlockGenerator {
 public:
  explicit BlockGenerator(GeneratorOptions options = {});

  /// Generate one valid block using the given RNG stream.
  x86::BasicBlock generate(util::Rng& rng) const;

  const GeneratorOptions& options() const { return options_; }

 private:
  x86::Instruction generate_instruction(
      util::Rng& rng, std::vector<x86::RegFamily>& live_gpr,
      std::vector<x86::RegFamily>& live_vec,
      std::vector<x86::MemOperand>& recent_mem, bool allow_mem) const;
  GeneratorOptions options_;
};

}  // namespace comet::bhive
