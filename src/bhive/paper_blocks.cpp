#include "bhive/paper_blocks.h"

#include "x86/parser.h"

namespace comet::bhive {

x86::BasicBlock listing1_motivating() {
  return x86::parse_block(R"(
    add rcx, rax
    mov rdx, rcx
    pop rbx
  )");
}

x86::BasicBlock listing2_case_study1() {
  return x86::parse_block(R"(
    lea rdx, [rax + 1]
    mov qword ptr [rdi + 24], rdx
    mov byte ptr [rax], 80
    mov rsi, qword ptr [r14 + 32]
    mov rdi, rbp
  )");
}

x86::BasicBlock listing3_case_study2() {
  return x86::parse_block(R"(
    mov ecx, edx
    xor edx, edx
    lea rax, [rcx + rax - 1]
    div rcx
    mov rdx, rcx
    imul rax, rcx
  )");
}

x86::BasicBlock listing4_appendixF_beta1() {
  return x86::parse_block(R"(
    vdivss xmm0, xmm0, xmm6
    vmulss xmm7, xmm0, xmm0
    vxorps xmm0, xmm0, xmm5
    vaddss xmm7, xmm7, xmm3
    vmulss xmm6, xmm6, xmm7
    vdivss xmm6, xmm3, xmm6
    vmulss xmm0, xmm6, xmm0
  )");
}

x86::BasicBlock listing5_appendixF_beta2() {
  return x86::parse_block(R"(
    shl eax, 3
    imul rax, r15
    xor edx, edx
    add rax, 7
    shr rax, 3
    lea rax, [rbp + rax - 1]
    div rbp
    imul rax, rbp
    mov rbp, qword ptr [rsp + 8]
    sub rbp, rax
  )");
}

}  // namespace comet::bhive
