// Deterministic pseudo-random number generation for COMET.
//
// Every stochastic component in the library (perturbation algorithm, dataset
// generator, neural-net initialization, baselines) takes an explicit Rng so
// that experiments are reproducible run-to-run and seed-to-seed. The engine
// is xoshiro256** seeded via splitmix64, which is fast, has a 256-bit state,
// and passes BigCrush — more than adequate for Monte-Carlo estimation.
//
// Thread-safety: an Rng instance is plain mutable state — never share one
// across threads. The rule the serving layer relies on (and tests assert):
// every concurrently served explanation request owns its own Rng, seeded
// deterministically from the request's options + block, so concurrent
// execution is bit-identical to sequential execution. Use fork() to derive
// independent child generators for per-item parallelism.
#pragma once

#include <cstdint>
#include <vector>

namespace comet::util {

/// splitmix64 step; used to expand a single 64-bit seed into engine state.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean and stddev.
  double normal(double mean, double stddev);

  /// Pick a uniformly random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[index(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::swap(v[i], v[index(i + 1)]);
    }
  }

  /// Derive an independent child generator (for per-item determinism).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Stable 64-bit hash of a byte string (FNV-1a); used to derive per-block
/// deterministic noise seeds from block text.
std::uint64_t fnv1a64(const void* data, std::size_t len);
std::uint64_t fnv1a64(const char* cstr);

}  // namespace comet::util
