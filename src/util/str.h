// String helpers shared by the assembly parser and bench output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace comet::util {

/// Trim ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Split on a delimiter character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any run of whitespace; drops empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Lowercase copy (ASCII).
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join strings with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Fixed-point decimal rendering ("0.633" for (0.6333, 3)) — unlike
/// std::to_string, which always prints six decimals.
std::string format_fixed(double value, int decimals);

}  // namespace comet::util
