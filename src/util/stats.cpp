#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace comet::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double mape(std::span<const double> predictions,
            std::span<const double> actuals, double eps) {
  if (predictions.size() != actuals.size()) {
    throw std::invalid_argument("mape: size mismatch");
  }
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (std::abs(actuals[i]) < eps) continue;
    acc += std::abs(predictions[i] - actuals[i]) / std::abs(actuals[i]);
    ++n;
  }
  return n ? 100.0 * acc / static_cast<double>(n) : 0.0;
}

double percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs), my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> ranks(std::span<const double> xs) {
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> r(xs.size());
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}
}  // namespace

double spearman(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const auto rx = ranks(xs);
  const auto ry = ranks(ys);
  return pearson(rx, ry);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace comet::util
