#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace comet::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return static_cast<std::size_t>(x % n);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(index(static_cast<std::size_t>(span)));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::normal() {
  // Box-Muller; discard the second variate for simplicity.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t fnv1a64(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a64(const char* cstr) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char* p = cstr; *p; ++p) {
    h ^= static_cast<unsigned char>(*p);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace comet::util
