// Small statistics helpers used across the evaluation harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace comet::util {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 if fewer than 2 samples.
double stddev(std::span<const double> xs);

/// Mean absolute percentage error: mean(|pred - actual| / |actual|) * 100.
/// Entries with |actual| < eps are skipped to avoid division blow-ups.
double mape(std::span<const double> predictions,
            std::span<const double> actuals, double eps = 1e-9);

/// Linear-interpolated percentile, q in [0, 100].
double percentile(std::vector<double> xs, double q);

/// Pearson correlation coefficient; 0 if degenerate.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Spearman rank correlation; 0 if degenerate.
double spearman(std::span<const double> xs, std::span<const double> ys);

/// Streaming mean/stddev accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance, n-1 denominator
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace comet::util
