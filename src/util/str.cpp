#include "util/str.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace comet::util {

std::string_view trim(std::string_view s) {
  const auto issp = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && issp(s.front())) s.remove_prefix(1);
  while (!s.empty() && issp(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format_fixed(double value, int decimals) {
  char buf[64];
  const int n = std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  if (n < 0) return {};
  if (static_cast<std::size_t>(n) < sizeof(buf)) return std::string(buf, n);
  // Rare huge magnitudes: retry with an exactly-sized buffer.
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, "%.*f", decimals, value);
  return out;
}

}  // namespace comet::util
