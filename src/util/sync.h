// Annotated synchronization primitives: the repo's only sanctioned route to
// a mutex or condition variable (enforced by scripts/comet_lint.py rule
// `raw-sync`).
//
// util::Mutex / util::MutexLock / util::CondVar are thin, zero-overhead
// wrappers over std::mutex / std::unique_lock / std::condition_variable
// whose one job is to carry Clang thread-safety attributes, so the locking
// discipline of the concurrent layer (serve/, cost::CostModel's batch
// fan-out) is a *compile-time contract* instead of a comment:
//
//   * a member annotated COMET_GUARDED_BY(mutex_) cannot be read or written
//     without holding mutex_,
//   * a method annotated COMET_REQUIRES(mutex_) cannot be called without it,
//   * a method annotated COMET_EXCLUDES(mutex_) cannot be called with it
//     (self-deadlock guard),
//
// all checked by `-Wthread-safety -Werror=thread-safety-analysis` under
// Clang (CMake option COMET_THREAD_SAFETY, scripts/check.sh
// --thread-safety). Under GCC every attribute expands to nothing and the
// wrappers compile down to the std types they hold.
//
// Condition-variable discipline: CondVar deliberately has NO predicate
// overload of wait(). The std::condition_variable predicate form hides the
// guarded reads inside a lambda, which the (intra-procedural) analysis
// checks as a separate unannotated function — the exact blind spot this
// header exists to close. Write the loop explicitly, so the analysis sees
// every read of guarded state happen with the lock held:
//
//   util::MutexLock lock(mutex_);
//   while (!stopping_ && queue_.empty()) cv_.wait(lock);
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

// Attribute spellings per the Clang thread-safety-analysis documentation
// (the capability-based vocabulary; abseil's thread_annotations.h uses the
// same shapes). GCC and MSVC see empty macros.
#if defined(__clang__)
#define COMET_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define COMET_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex").
#define COMET_CAPABILITY(x) COMET_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define COMET_SCOPED_CAPABILITY COMET_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding `x`.
#define COMET_GUARDED_BY(x) COMET_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is guarded by `x` (the pointer itself may
/// be read freely).
#define COMET_PT_GUARDED_BY(x) COMET_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function callable only while holding the listed capabilities.
#define COMET_REQUIRES(...) \
  COMET_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that acquires the listed capabilities (held on return).
#define COMET_ACQUIRE(...) \
  COMET_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases the listed capabilities.
#define COMET_RELEASE(...) \
  COMET_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function that acquires the capability iff it returns `val`.
#define COMET_TRY_ACQUIRE(...) \
  COMET_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function that must NOT be called while holding the listed capabilities
/// (it acquires them itself; calling with them held would self-deadlock).
#define COMET_EXCLUDES(...) COMET_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returning a reference to the capability guarding its result.
#define COMET_RETURN_CAPABILITY(x) COMET_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the contract holds anyway.
#define COMET_NO_THREAD_SAFETY_ANALYSIS \
  COMET_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace comet::util {

class CondVar;

/// std::mutex with the capability attribute: members guarded by an
/// instance are annotated COMET_GUARDED_BY(that_instance).
class COMET_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() COMET_ACQUIRE() { mu_.lock(); }
  void unlock() COMET_RELEASE() { mu_.unlock(); }
  bool try_lock() COMET_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over util::Mutex — the one lock type in the repo, used
/// for both lock_guard-style critical sections and CondVar waits (it wraps
/// a std::unique_lock so CondVar can release/reacquire it while blocked).
class COMET_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) COMET_ACQUIRE(mutex) : lock_(mutex.mu_) {}
  ~MutexLock() COMET_RELEASE() {}  // std::unique_lock unlocks

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable over util::MutexLock. No predicate wait() on
/// purpose — see the header comment for the explicit-while-loop discipline.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock` and blocks; reacquired on return. As with
  /// any condition variable, spurious wakeups happen: always wait in a
  /// `while (!condition)` loop.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Timed wait: releases `lock`, blocks for at most `timeout_ns`, and
  /// returns false on timeout (true on notify or spurious wakeup). The
  /// explicit-while-loop discipline applies unchanged — callers recompute
  /// their remaining deadline and re-test the condition on every wakeup
  /// (see net::SimTransport::recv for the canonical shape). Timed against
  /// the monotonic clock std::condition_variable::wait_for uses internally.
  bool wait_for_ns(MutexLock& lock, std::uint64_t timeout_ns) {
    return cv_.wait_for(lock.lock_, std::chrono::nanoseconds(timeout_ns)) ==
           std::cv_status::no_timeout;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace comet::util
