// Bernoulli KL-divergence confidence bounds used by the KL-LUCB best-arm
// identification procedure (Kaufmann & Kalyanakrishnan, 2013), which COMET
// (following Anchors, Ribeiro et al. 2018) uses to estimate the precision of
// candidate explanation feature sets with as few cost-model queries as
// possible.
//
// For an arm with empirical mean p_hat after n pulls and exploration level
// `level` (typically log(1/delta) plus a union-bound term), the upper/lower
// confidence bounds are
//
//   ub = max { q in [p_hat, 1] : n * kl(p_hat, q) <= level }
//   lb = min { q in [0, p_hat] : n * kl(p_hat, q) <= level }
//
// computed here by bisection on the monotone function kl(p_hat, .).
#pragma once

#include <cstddef>

namespace comet::util {

/// KL divergence between Bernoulli(p) and Bernoulli(q), in nats.
/// Handles the p in {0,1} boundary cases; q is clamped away from {0,1}.
double bernoulli_kl(double p, double q);

/// Upper confidence bound: largest q >= p_hat with n*kl(p_hat,q) <= level.
double kl_upper_bound(double p_hat, std::size_t n, double level);

/// Lower confidence bound: smallest q <= p_hat with n*kl(p_hat,q) <= level.
double kl_lower_bound(double p_hat, std::size_t n, double level);

/// Exploration level used by KL-LUCB: log(k1 * n_arms * t^alpha / delta),
/// the union-bound schedule recommended in the paper (alpha=1.1, k1=405.5).
double kl_lucb_level(std::size_t t, std::size_t n_arms, double delta);

}  // namespace comet::util
