// Input-handling contract macros for library code.
//
// The byte-parsing surfaces (ISA parsers, checkpoint deserializers, dataset
// loaders) will soon consume bytes from remote clients and shared caches,
// not just our own fixtures. Their invariants therefore must fail in a way
// that is observable by tests and fuzz harnesses and recoverable by a
// server: a typed exception, never abort()/assert() (which would turn one
// malformed request into a process kill) and never a silent huge
// allocation (a forged size field must be rejected *before* any buffer is
// sized).
//
//   COMET_CHECK(cond)            always-on invariant; throws
//                                util::ContractViolation on failure
//   COMET_CHECK_MSG(cond, msg)   same, with a streamed context message:
//                                COMET_CHECK_MSG(n <= kMax, "rows=" << n)
//   COMET_DCHECK(cond)           debug-only (compiled out under NDEBUG
//                                unless COMET_DCHECK_ENABLED=1 forces it
//                                on, as the fuzz build does); also throws,
//                                so a fuzzer finding is a catchable report,
//                                not a crash triage session
//
// The comet-lint rule `raw-assert` enforces that src/ uses these instead
// of assert()/abort().
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace comet::util {

/// Thrown when a COMET_CHECK / COMET_DCHECK contract fails. Derives from
/// std::logic_error: a violation means the *input* (or a caller) broke a
/// stated precondition, and the operation was refused before side effects.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

[[noreturn]] inline void contract_fail(const char* cond, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violation at " << file << ":" << line << ": CHECK(" << cond
     << ")";
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace comet::util

#define COMET_CHECK(cond)                                              \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::comet::util::contract_fail(#cond, __FILE__, __LINE__, {});     \
    }                                                                  \
  } while (false)

#define COMET_CHECK_MSG(cond, msg)                                     \
  do {                                                                 \
    if (!(cond)) {                                                     \
      std::ostringstream comet_check_os_;                              \
      comet_check_os_ << msg;                                          \
      ::comet::util::contract_fail(#cond, __FILE__, __LINE__,          \
                                   comet_check_os_.str());             \
    }                                                                  \
  } while (false)

// Debug checks default to the build's NDEBUG setting but can be forced on
// (the fuzz and coverage builds define COMET_DCHECK_ENABLED=1 so optimized
// fuzzing still exercises every contract).
#ifndef COMET_DCHECK_ENABLED
#ifdef NDEBUG
#define COMET_DCHECK_ENABLED 0
#else
#define COMET_DCHECK_ENABLED 1
#endif
#endif

#if COMET_DCHECK_ENABLED
#define COMET_DCHECK(cond) COMET_CHECK(cond)
#else
#define COMET_DCHECK(cond) \
  do {                     \
  } while (false)
#endif
