// ASCII table rendering for benchmark output. Every bench binary prints the
// rows/series of the paper table or figure it reproduces through this class,
// so all experiment output is uniformly formatted and grep-able.
#pragma once

#include <string>
#include <vector>

namespace comet::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string fmt(double v, int precision = 2);
  /// "mean ± std" cell.
  static std::string fmt_pm(double mean, double std, int precision = 2);

  /// Render with box-drawing separators.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace comet::util
