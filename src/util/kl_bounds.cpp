#include "util/kl_bounds.h"

#include <algorithm>
#include <cmath>

namespace comet::util {

namespace {
constexpr double kEps = 1e-15;
constexpr int kBisectIters = 60;  // ~1e-18 interval resolution
}  // namespace

double bernoulli_kl(double p, double q) {
  p = std::clamp(p, 0.0, 1.0);
  q = std::clamp(q, kEps, 1.0 - kEps);
  double kl = 0.0;
  if (p > 0.0) kl += p * std::log(p / q);
  if (p < 1.0) kl += (1.0 - p) * std::log((1.0 - p) / (1.0 - q));
  return kl;
}

double kl_upper_bound(double p_hat, std::size_t n, double level) {
  if (n == 0) return 1.0;
  const double budget = level / static_cast<double>(n);
  double lo = std::clamp(p_hat, 0.0, 1.0);
  double hi = 1.0;
  if (bernoulli_kl(p_hat, hi - kEps) <= budget) return 1.0;
  for (int i = 0; i < kBisectIters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (bernoulli_kl(p_hat, mid) > budget) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return lo;
}

double kl_lower_bound(double p_hat, std::size_t n, double level) {
  if (n == 0) return 0.0;
  const double budget = level / static_cast<double>(n);
  double lo = 0.0;
  double hi = std::clamp(p_hat, 0.0, 1.0);
  if (bernoulli_kl(p_hat, lo + kEps) <= budget) return 0.0;
  for (int i = 0; i < kBisectIters; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (bernoulli_kl(p_hat, mid) > budget) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double kl_lucb_level(std::size_t t, std::size_t n_arms, double delta) {
  // Kaufmann & Kalyanakrishnan (2013), Section 3: beta(t, delta) =
  // log(k1 * K * t^alpha / delta) with alpha = 1.1, k1 = 405.5.
  constexpr double kAlpha = 1.1;
  constexpr double kK1 = 405.5;
  const double tt = std::max<double>(1.0, static_cast<double>(t));
  const double k = std::max<double>(1.0, static_cast<double>(n_arms));
  delta = std::clamp(delta, 1e-12, 1.0 - 1e-12);
  return std::log(kK1 * k * std::pow(tt, kAlpha) / delta);
}

}  // namespace comet::util
