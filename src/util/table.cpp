#include "util/table.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace comet::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_pm(double mean, double std, int precision) {
  return fmt(mean, precision) + " +- " + fmt(std, precision);
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += " " + cells[c] + std::string(widths[c] - cells[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

}  // namespace comet::util
