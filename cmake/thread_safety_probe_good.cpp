// Positive probe for the COMET_THREAD_SAFETY gate (see CMakeLists.txt):
// a correctly locked use of the annotated primitives. If this fails to
// compile, the analysis flags themselves are broken (wrong compiler, wrong
// spelling) — the gate must abort rather than silently check nothing.
#include "util/sync.h"

namespace {

struct Counter {
  comet::util::Mutex mutex;
  int value COMET_GUARDED_BY(mutex) = 0;

  int increment() COMET_EXCLUDES(mutex) {
    comet::util::MutexLock lock(mutex);
    return ++value;
  }
};

}  // namespace

int main() {
  Counter counter;
  return counter.increment() == 1 ? 0 : 1;
}
