// Negative probe for the COMET_THREAD_SAFETY gate (see CMakeLists.txt):
// reads a COMET_GUARDED_BY member without holding its mutex. Under
// -Werror=thread-safety-analysis this file MUST fail to compile; if it
// compiles, the analysis is not actually running and the configure step
// aborts. (Never add this file to any target.)
#include "util/sync.h"

namespace {

struct Counter {
  comet::util::Mutex mutex;
  int value COMET_GUARDED_BY(mutex) = 0;

  // Missing MutexLock — the exact misuse the gate exists to reject.
  int unlocked_read() { return value; }
};

}  // namespace

int main() {
  Counter counter;
  return counter.unlocked_read();
}
